package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hdpower/internal/hddist"
	"hdpower/internal/logic"
	"hdpower/internal/stats"
)

// maxBatchCycles bounds one estimate request; combined with the body cap
// it keeps a single request from monopolizing a handler goroutine.
const maxBatchCycles = 1 << 20

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a request body, translating decode failures into the
// right status: 413 for an oversized body, 400 for malformed JSON.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

type estimateRequest struct {
	Model BuildSpec `json:"model"`
	// Hd estimates directly from per-cycle Hamming-distance classes,
	// optionally refined by StableZeros (enhanced models).
	Hd          []int `json:"hd,omitempty"`
	StableZeros []int `json:"stable_zeros,omitempty"`
	// Words estimates a batched vector stream: the full input vectors of
	// consecutive cycles, low bits first, at most 64 input bits.
	Words []uint64 `json:"words,omitempty"`
}

type estimateResponse struct {
	Key       string    `json:"key"`
	Cycles    int       `json:"cycles"`
	Enhanced  bool      `json:"enhanced"`
	Estimates []float64 `json:"estimates"`
	Total     float64   `json:"total"`
	Mean      float64   `json:"mean"`
	// Degraded marks an answer served from a fallback model instead of the
	// exact cached one; Fallback names the rung ("seed", "library",
	// "regression").
	Degraded bool   `json:"degraded,omitempty"`
	Fallback string `json:"fallback,omitempty"`
}

// handleEstimate prices per-cycle charges from the fitted coefficient
// table — microseconds per lookup, no simulation. Steady-state requests
// run entirely on the lock-free LUT data plane (fastpath.go): pooled
// buffers, hand-rolled JSON, an atomic snapshot lookup, zero heap
// allocations. Anything outside the hot shape falls back to the legacy
// encoding/json + struct-walk path, which owns all error semantics.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	if !readBody(w, r, sc) {
		return
	}
	if out, ok := s.estimateFastBytes(sc.body, sc, true); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
		return
	}
	s.met.servedLegacy.Inc()
	s.estimateLegacy(w, sc.body)
}

// decodeJSON is readJSON for an already-buffered body (the fast path
// reads the bytes before deciding it cannot serve them). Size overflow
// was already answered by readBody, so only malformed JSON remains.
func decodeJSON(w http.ResponseWriter, body []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// estimateLegacy is the slow estimate path: reflective JSON decode and
// struct-walking model evaluation, byte-identical in behavior to the
// pre-LUT server. The fast path serves only requests this path would
// answer identically, so falling back is always safe.
func (s *Server) estimateLegacy(w http.ResponseWriter, body []byte) {
	var req estimateRequest
	if !decodeJSON(w, body, &req) {
		return
	}
	est, enhanced, fallback, rerr := s.computeEstimate(&req)
	if rerr != nil {
		writeError(w, rerr.code, "%s", rerr.msg)
		return
	}
	var total float64
	for _, q := range est {
		total += q
	}
	mean := 0.0
	if len(est) > 0 {
		mean = total / float64(len(est))
	}
	s.met.estCycles.Add(int64(len(est)))
	writeJSON(w, http.StatusOK, estimateResponse{
		Key:       req.Model.Key(),
		Cycles:    len(est),
		Enhanced:  enhanced,
		Estimates: est,
		Total:     total,
		Mean:      mean,
		Degraded:  fallback != "",
		Fallback:  fallback,
	})
}

// computeEstimate resolves the model (with the degradation chain) and
// evaluates one decoded estimate request. Failures come back as a
// resolveError carrying exactly the status and message the legacy handler
// always produced; the stream endpoint renders the same failure as a
// per-line error object instead.
func (s *Server) computeEstimate(req *estimateRequest) ([]float64, bool, string, *resolveError) {
	start := time.Now()
	badReq := func(format string, args ...any) *resolveError {
		return &resolveError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
	}
	model, fallback, rerr := s.lookupModel(&req.Model)
	if rerr != nil {
		return nil, false, "", rerr
	}
	m := model.InputBits

	var est []float64
	var enhanced bool
	switch {
	case len(req.Words) > 0 && len(req.Hd) > 0:
		return nil, false, "", badReq("pass either hd or words, not both")
	case len(req.Words) > 0:
		if len(req.Words) < 2 {
			return nil, false, "", badReq("words mode needs >= 2 vectors")
		}
		if len(req.Words) > maxBatchCycles {
			return nil, false, "", badReq("batch exceeds %d vectors", maxBatchCycles)
		}
		if m > 64 {
			return nil, false, "", badReq(
				"words mode supports <= 64 input bits, model has %d; use hd mode", m)
		}
		words := make([]logic.Word, len(req.Words))
		for i, v := range req.Words {
			if m < 64 && v>>uint(m) != 0 {
				return nil, false, "", badReq(
					"word %d (%#x) does not fit the model's %d input bits", i, v, m)
			}
			words[i] = logic.FromUint(v, m)
		}
		enhanced = model.HasEnhanced()
		est = make([]float64, len(words)-1)
		for i := 1; i < len(words); i++ {
			hd := logic.Hd(words[i-1], words[i])
			if enhanced {
				est[i-1] = model.PEnhanced(hd, logic.StableZeros(words[i-1], words[i]))
			} else {
				est[i-1] = model.P(hd)
			}
		}
	case len(req.Hd) > 0:
		if len(req.Hd) > maxBatchCycles {
			return nil, false, "", badReq("batch exceeds %d cycles", maxBatchCycles)
		}
		for i, hd := range req.Hd {
			if hd < 0 || hd > m {
				return nil, false, "", badReq("hd[%d] = %d outside [0, %d]", i, hd, m)
			}
		}
		if len(req.StableZeros) > 0 {
			if len(req.StableZeros) != len(req.Hd) {
				return nil, false, "", badReq(
					"stable_zeros length %d != hd length %d", len(req.StableZeros), len(req.Hd))
			}
			for i, z := range req.StableZeros {
				if z < 0 || z > m-req.Hd[i] {
					return nil, false, "", badReq(
						"stable_zeros[%d] = %d outside [0, %d] for hd %d", i, z, m-req.Hd[i], req.Hd[i])
				}
			}
			var err error
			est, err = model.EstimateEnhanced(req.Hd, req.StableZeros)
			if err != nil {
				return nil, false, "", badReq("%v", err)
			}
			enhanced = model.HasEnhanced()
		} else {
			est = model.EstimateBasic(req.Hd)
		}
	default:
		return nil, false, "", badReq("pass hd classes or a words vector stream")
	}
	s.recordLegacyTraffic(req, m, len(est), time.Since(start).Seconds())
	return est, enhanced, fallback, nil
}

type statsRequest struct {
	Model BuildSpec `json:"model"`
	// Word-level statistics of the per-port stream (paper Section 6).
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Rho  float64 `json:"rho"`
	// N is the nominal sample count behind the statistics (default 1024).
	N int `json:"n,omitempty"`
	// Width is the per-port word width of the stream.
	Width int `json:"width"`
	// Ports is the number of module ports fed by independent streams with
	// these statistics; defaults to input_bits / width.
	Ports int `json:"ports,omitempty"`
}

type statsResponse struct {
	Key       string      `json:"key"`
	AvgCharge float64     `json:"avg_charge"`
	AvgHd     float64     `json:"avg_hd"`
	Dist      hddist.Dist `json:"hd_dist"`
	Degraded  bool        `json:"degraded,omitempty"`
	Fallback  string      `json:"fallback,omitempty"`
}

// handleEstimateStats is the closed-form path: no vectors ever cross the
// wire — word-level statistics (μ, σ, ρ) turn into an analytic
// Hamming-distance distribution (dual-bit-type model, eqs. 12–18), which
// the fitted coefficient table integrates into an average charge.
func (s *Server) handleEstimateStats(w http.ResponseWriter, r *http.Request) {
	var req statsRequest
	if !readJSON(w, r, &req) {
		return
	}
	model, fallback, ok := s.resolveModel(w, &req.Model)
	if !ok {
		return
	}
	m := model.InputBits
	if req.Width <= 0 || req.Width > m {
		writeError(w, http.StatusBadRequest, "width %d outside (0, %d]", req.Width, m)
		return
	}
	if req.Std <= 0 {
		writeError(w, http.StatusBadRequest, "std must be positive (constant streams switch nothing)")
		return
	}
	if req.Rho < -1 || req.Rho > 1 {
		writeError(w, http.StatusBadRequest, "rho %v outside [-1, 1]", req.Rho)
		return
	}
	if req.N == 0 {
		req.N = 1024
	}
	if req.Ports == 0 {
		req.Ports = m / req.Width
	}
	if req.Ports <= 0 || req.Ports*req.Width != m {
		writeError(w, http.StatusBadRequest,
			"ports (%d) x width (%d) must equal the model's %d input bits", req.Ports, req.Width, m)
		return
	}

	// The closed-form distribution depends only on (N, μ, σ, ρ, width,
	// ports) — memoized, so repeated stats queries skip the analytic
	// construction and convolution entirely and share one cached slice.
	ws := stats.WordStats{N: req.N, Mean: req.Mean, Std: req.Std, Rho: req.Rho}
	dist := s.distMemo.FromWordStatsPorts(ws, req.Width, req.Ports)
	avg, err := model.AvgFromDist(dist)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Key:       req.Model.Key(),
		AvgCharge: avg,
		AvgHd:     dist.Mean(),
		Dist:      dist,
		Degraded:  fallback != "",
		Fallback:  fallback,
	})
}

type modelsResponse struct {
	Models []modelSnapshot `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelsResponse{Models: s.cache.snapshot()})
}

type buildRequest struct {
	BuildSpec
	// Wait blocks until the build settles (bounded by the request
	// timeout) instead of returning 202 immediately.
	Wait bool `json:"wait,omitempty"`
}

type buildResponse struct {
	// ID addresses the build's progress (GET /v1/models/build/{id}) and
	// manifest (GET /v1/models/{id}/manifest) endpoints.
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// handleModelBuild is the slow path: characterize+fit through the
// parallel engine, deduplicated by singleflight, bounded by the build
// queue (429 when saturated), cached in the LRU.
func (s *Server) handleModelBuild(w http.ResponseWriter, r *http.Request) {
	var req buildRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "build spec: %v", err)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining; not accepting new builds")
		return
	}
	ent, started := s.cache.begin(req.BuildSpec)
	if started {
		s.buildWG.Add(1)
		select {
		case s.queue <- ent:
			s.met.queueDepth.Add(1)
			s.writeBuildSpec(ent)
		default:
			s.buildWG.Done()
			s.cache.abandon(ent)
			s.met.queueRejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "build queue full; retry later")
			return
		}
	} else if status := s.entryStatus(ent); status == statusReady {
		s.met.cacheHits.Inc()
		writeJSON(w, http.StatusOK, buildResponse{ID: ent.id, Key: ent.key, Status: statusReady})
		return
	} else {
		s.met.buildsDeduped.Inc()
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, buildResponse{ID: ent.id, Key: ent.key, Status: statusBuilding})
		return
	}
	select {
	case <-ent.done:
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "build %s still running: %v", ent.key, r.Context().Err())
		return
	}
	status, buildErr := s.entryResult(ent)
	if status == statusFailed {
		writeJSON(w, http.StatusInternalServerError,
			buildResponse{ID: ent.id, Key: ent.key, Status: statusFailed, Error: buildErr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, buildResponse{ID: ent.id, Key: ent.key, Status: status})
}

func (s *Server) entryStatus(ent *buildEntry) string {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return ent.status
}

func (s *Server) entryResult(ent *buildEntry) (string, error) {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return ent.status, ent.err
}
