package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
)

// httpGet fetches a URL and returns the response plus its body.
func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// buildReady builds one model through the API and fails the test if it
// does not settle ready.
func buildReady(t *testing.T, url string, spec map[string]any) {
	t.Helper()
	spec["wait"] = true
	resp, data := postJSON(t, url+"/v1/models/build", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	if br := decode[buildResponse](t, data); br.Status != statusReady {
		t.Fatalf("build status %q: %s", br.Status, br.Error)
	}
}

// slowModelJSON renders the same model spec with an explicit patterns
// field: the hand-rolled parser only accepts the cache-key triple, so the
// extra field forces the request onto the legacy path while resolving to
// the same cached model (patterns is not part of the key).
func slowModelJSON(module string, width int, seed int64) string {
	return fmt.Sprintf(`{"module":%q,"width":%d,"seed":%d,"patterns":%d}`,
		module, width, seed, defaultPatterns)
}

func fastModelJSON(module string, width int, seed int64) string {
	return fmt.Sprintf(`{"module":%q,"width":%d,"seed":%d}`, module, width, seed)
}

// TestFastSlowEquivalenceLibrary characterizes every catalog module for
// real and pins the fast path to the legacy path byte for byte: the same
// series priced through the LUT hot shape and through the encoding/json +
// struct-walk fallback must produce identical response bodies — statuses,
// floats, field order, indentation, everything.
func TestFastSlowEquivalenceLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the whole catalog")
	}
	_, ts := newTestServer(t, Config{CharWorkers: 1, Backend: core.BackendBitParallel})

	for _, name := range dwlib.Names() {
		mod, err := dwlib.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		width := mod.MinWidth
		if width < 2 {
			width = 2
		}
		buildReady(t, ts.URL, map[string]any{
			"module": name, "width": width, "seed": 3,
			"patterns": 400, "enhanced": true, "z_clusters": 3,
		})
		// Read the model's input-bit count from the inventory endpoint.
		invResp, invData := httpGet(t, ts.URL+"/v1/models")
		if invResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: models: %d %s", name, invResp.StatusCode, invData)
		}
		m := 0
		key := fmt.Sprintf("%s/w%d/s3", name, width)
		for _, snap := range decode[modelsResponse](t, invData).Models {
			if snap.Key == key {
				m = snap.InputBits
			}
		}
		if m < 1 {
			t.Fatalf("%s: could not determine input bits", name)
		}

		series := []string{
			fmt.Sprintf(`"hd":[0,1,%d,%d]`, m/2, m),
			fmt.Sprintf(`"hd":[1,%d],"stable_zeros":[%d,0]`, m, m-1),
		}
		if m <= 64 {
			series = append(series, `"words":[0,1,3,1]`)
		}
		for _, ser := range series {
			fastBody := `{"model":` + fastModelJSON(name, width, 3) + `,` + ser + `}`
			slowBody := `{"model":` + slowModelJSON(name, width, 3) + `,` + ser + `}`
			fastResp, fastData := postRaw(t, ts.URL+"/v1/estimate", fastBody)
			slowResp, slowData := postRaw(t, ts.URL+"/v1/estimate", slowBody)
			if fastResp.StatusCode != slowResp.StatusCode {
				t.Fatalf("%s %s: status fast=%d slow=%d", name, ser,
					fastResp.StatusCode, slowResp.StatusCode)
			}
			if string(fastData) != string(slowData) {
				t.Errorf("%s %s: fast and slow responses differ:\nfast: %s\nslow: %s",
					name, ser, fastData, slowData)
			}
		}
	}
}

// nastyModel returns a model whose coefficients stress the float
// rendering: subnormal-adjacent magnitudes, exponent-form boundaries,
// repeating binary fractions.
func nastyModel(m int) *core.Model {
	vals := []float64{0.1 + 0.2, 1e-7, 9.9e20, 1.23456789e21, 5e-324,
		1.0 / 3.0, 2.5e-7, 1e21, 0.30000000000000004, 123456.789012345}
	model := &core.Model{Module: "nasty", InputBits: m, Basic: make([]core.Coef, m)}
	for i := range model.Basic {
		model.Basic[i] = core.Coef{P: vals[i%len(vals)], Count: 10}
	}
	return model
}

// TestFastSlowEquivalenceNastyFloats pins the hand-rolled float encoder
// against encoding/json on coefficients chosen to hit every formatting
// branch ('e' form thresholds, exponent padding, shortest-representation
// round trips).
func TestFastSlowEquivalenceNastyFloats(t *testing.T) {
	m := 10
	_, ts := newTestServer(t, Config{
		BuildFunc: func(context.Context, BuildSpec, *core.Hooks) (*core.Model, error) {
			return nastyModel(m), nil
		},
	})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 5, "seed": 1})

	var hds []string
	for i := 0; i <= m; i++ {
		hds = append(hds, fmt.Sprint(i))
	}
	ser := `"hd":[` + strings.Join(hds, ",") + `]`
	fastBody := `{"model":` + fastModelJSON("ripple-adder", 5, 1) + `,` + ser + `}`
	slowBody := `{"model":` + slowModelJSON("ripple-adder", 5, 1) + `,` + ser + `}`
	fastResp, fastData := postRaw(t, ts.URL+"/v1/estimate", fastBody)
	slowResp, slowData := postRaw(t, ts.URL+"/v1/estimate", slowBody)
	if fastResp.StatusCode != http.StatusOK || slowResp.StatusCode != http.StatusOK {
		t.Fatalf("status fast=%d slow=%d: %s %s",
			fastResp.StatusCode, slowResp.StatusCode, fastData, slowData)
	}
	if string(fastData) != string(slowData) {
		t.Errorf("nasty-float responses differ:\nfast: %s\nslow: %s", fastData, slowData)
	}
}

// TestFastPathActuallyServes pins the dispatch itself: a hot-shape request
// must be answered by the LUT path, and the deliberately de-optimized
// variant by the legacy path, visible in hdserve_estimate_served_total.
func TestFastPathActuallyServes(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	resp, data := postRaw(t, ts.URL+"/v1/estimate",
		`{"model":`+fastModelJSON("ripple-adder", 2, 7)+`,"hd":[0,1,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast estimate: %d %s", resp.StatusCode, data)
	}
	if got := s.met.servedLUT.Value(); got != 1 {
		t.Fatalf("servedLUT = %d, want 1", got)
	}
	resp, data = postRaw(t, ts.URL+"/v1/estimate",
		`{"model":`+slowModelJSON("ripple-adder", 2, 7)+`,"hd":[0,1,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow estimate: %d %s", resp.StatusCode, data)
	}
	if got := s.met.servedLegacy.Value(); got != 1 {
		t.Fatalf("servedLegacy = %d, want 1", got)
	}
	if got := s.met.lutSwaps.Value(); got < 1 {
		t.Fatalf("lutSwaps = %d, want >= 1 (build must publish a snapshot)", got)
	}
}

// TestEstimateFastAllocs proves the tentpole claim: a steady-state
// estimate — parse, table lookup, evaluation, render — performs zero heap
// allocations, in both the unary (indented) and stream (compact) shapes
// and in every request mode.
func TestEstimateFastAllocs(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	bodies := map[string]string{
		"hd":       `{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0,1,2,3,4]}`,
		"enhanced": `{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[1,2],"stable_zeros":[3,1]}`,
		"words":    `{"model":{"module":"ripple-adder","width":2,"seed":7},"words":[0,15,3,9,12]}`,
	}
	for mode, body := range bodies {
		for _, indent := range []bool{true, false} {
			sc := getScratch()
			raw := []byte(body)
			allocs := testing.AllocsPerRun(300, func() {
				if _, ok := s.estimateFastBytes(raw, sc, indent); !ok {
					t.Fatalf("%s: fast path refused hot-shape request", mode)
				}
			})
			putScratch(sc)
			if allocs != 0 {
				t.Errorf("%s (indent=%v): %v allocs/op on the steady path, want 0",
					mode, indent, allocs)
			}
		}
	}
}

// TestEstimateFastFallbacks enumerates the shapes the fast parser must
// refuse (escapes, floats, unknown fields, trailing data, spec fields
// beyond the key triple) and checks each still gets the correct legacy
// answer end to end.
func TestEstimateFastFallbacks(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	model := fastModelJSON("ripple-adder", 2, 7)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"float hd", `{"model":` + model + `,"hd":[1.5]}`, http.StatusBadRequest},
		{"unknown field", `{"model":` + model + `,"hd":[1],"bogus":1}`, http.StatusBadRequest},
		{"escaped module", `{"model":{"module":"ripple\u002dadder","width":2,"seed":7},"hd":[1]}`, http.StatusOK},
		{"spec patterns", `{"model":` + slowModelJSON("ripple-adder", 2, 7) + `,"hd":[1]}`, http.StatusOK},
		{"trailing data", `{"model":` + model + `,"hd":[1]}{}`, http.StatusOK},
		{"unknown module", `{"model":{"module":"nonesuch","width":2,"seed":7},"hd":[1]}`, http.StatusBadRequest},
		{"hd out of range", `{"model":` + model + `,"hd":[99]}`, http.StatusBadRequest},
		{"both modes", `{"model":` + model + `,"hd":[1],"words":[0,1]}`, http.StatusBadRequest},
		{"no series", `{"model":` + model + `}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postRaw(t, ts.URL+"/v1/estimate", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.code, data)
		}
	}
	if lut := s.met.servedLUT.Value(); lut != 0 {
		t.Errorf("servedLUT = %d, want 0: a fallback shape hit the fast path", lut)
	}
}

// TestEstimateReadsDuringRCUSwaps hammers the estimate endpoint from many
// goroutines while the model cache continuously completes builds —
// publishing new LUT snapshots and evicting old ones through the LRU.
// Under -race this pins the lock-free read side of the RCU swap.
func TestEstimateReadsDuringRCUSwaps(t *testing.T) {
	s, _ := newTestServer(t, Config{BuildFunc: instantBuilds(4), ModelCache: 4})
	h := s.Handler()
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec
	}
	buildSeed := func(seed int) {
		rec := httptest.NewRecorder()
		body := fmt.Sprintf(`{"module":"ripple-adder","width":2,"seed":%d,"wait":true}`, seed)
		req := httptest.NewRequest(http.MethodPost, "/v1/models/build", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("build seed %d: %d %s", seed, rec.Code, rec.Body)
		}
	}
	buildSeed(0)

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Rotate across seeds so reads hit fresh snapshots, evicted
				// models (degraded sibling fallback) and never-built keys.
				seed := (g + i) % 12
				body := fmt.Sprintf(
					`{"model":{"module":"ripple-adder","width":2,"seed":%d},"hd":[0,1,2,3,4]}`, seed)
				if rec := post(body); rec.Code != http.StatusOK {
					t.Errorf("estimate seed %d: %d %s", seed, rec.Code, rec.Body)
					return
				}
			}
		}(g)
	}
	// Each build completion swaps the RCU snapshot; capacity 4 forces
	// evictions, so snapshots shrink as well as grow.
	for seed := 1; seed < 40; seed++ {
		buildSeed(seed)
	}
	close(stop)
	wg.Wait()
	if swaps := s.met.lutSwaps.Value(); swaps < 39 {
		t.Errorf("lutSwaps = %d, want >= 39", swaps)
	}
}
