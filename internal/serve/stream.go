package serve

// stream.go is the batched half of the estimate data plane:
// POST /v1/estimate/stream accepts newline-delimited JSON — one estimate
// request per line, the same shape as /v1/estimate — and answers with one
// NDJSON line per input line, in order: either a compact estimate
// response or an {"error": "..."} object carrying exactly the message the
// unary endpoint would have returned for that request. A bad line never
// aborts the batch; the HTTP status is 200 once streaming starts.
//
// Each line runs through the same dispatch as a unary request — the
// lock-free LUT fast path when the line fits the hot shape, the legacy
// struct-walk otherwise — and every hdserve_estimate_* counter increments
// per line, so batch and unary traffic read identically on /metrics.
// Reader, writer and scratch buffers are pooled: a steady-state line on
// the fast path allocates nothing.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// streamFlushEvery bounds how many lines are answered between explicit
// flushes, so a slowly-fed long batch still streams results back instead
// of buffering them to the end.
const streamFlushEvery = 128

// streamBufSize sizes the pooled line reader and response writer. Lines
// longer than the reader buffer spill into the request scratch (correct,
// just not allocation-free).
const streamBufSize = 64 << 10

var streamReaderPool = sync.Pool{New: func() any {
	return bufio.NewReaderSize(nil, streamBufSize)
}}

var streamWriterPool = sync.Pool{New: func() any {
	return bufio.NewWriterSize(io.Discard, streamBufSize)
}}

// readLine returns the next newline-terminated line without its
// terminator, reusing the reader's internal buffer when the line fits.
// err is io.EOF at end of body (possibly alongside a final unterminated
// line), or the transport error that interrupted the batch.
func readLine(br *bufio.Reader, sc *estScratch) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == nil {
		return line[:len(line)-1], nil
	}
	if err != bufio.ErrBufferFull {
		return line, err
	}
	// Oversized line: accumulate the spill into the scratch body buffer.
	sc.body = append(sc.body[:0], line...)
	for err == bufio.ErrBufferFull {
		line, err = br.ReadSlice('\n')
		sc.body = append(sc.body, line...)
	}
	if err == nil {
		sc.body = sc.body[:len(sc.body)-1]
	}
	return sc.body, err
}

// blankLine reports whether a line holds only whitespace; such lines are
// skipped without producing an output line.
func blankLine(line []byte) bool {
	for _, c := range line {
		switch c {
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

// writeStreamError emits one {"error": "..."} line. The message passes
// through json.Marshal so arbitrary decode errors stay valid JSON.
func writeStreamError(bw *bufio.Writer, msg string) {
	b, err := json.Marshal(errorResponse{Error: msg})
	if err != nil {
		b = []byte(`{"error":"internal error"}`)
	}
	_, _ = bw.Write(b)
	_ = bw.WriteByte('\n')
}

// streamLineLegacy answers one stream line through the legacy decode and
// struct-walk path, compacting the response onto a single line.
func (s *Server) streamLineLegacy(bw *bufio.Writer, sc *estScratch, line []byte) {
	s.met.servedLegacy.Inc()
	var req estimateRequest
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeStreamError(bw, fmt.Sprintf("bad request body: %v", err))
		return
	}
	est, enhanced, fallback, rerr := s.computeEstimate(&req)
	if rerr != nil {
		writeStreamError(bw, rerr.msg)
		return
	}
	var total float64
	for _, q := range est {
		total += q
	}
	mean := 0.0
	if len(est) > 0 {
		mean = total / float64(len(est))
	}
	s.met.estCycles.Add(int64(len(est)))
	sc.out = appendEstimateResponse(sc.out[:0], req.Model.Module, req.Model.Width,
		req.Model.Seed, est, enhanced, total, mean, fallback, false)
	_, _ = bw.Write(sc.out)
	_ = bw.WriteByte('\n')
}

// handleEstimateStream is the NDJSON batch endpoint. One request prices
// an arbitrary number of estimate lines without re-paying per-request
// HTTP, routing, or middleware costs — the wire format a load generator
// or a simulation trace exporter wants.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	br := streamReaderPool.Get().(*bufio.Reader)
	br.Reset(r.Body)
	defer func() {
		br.Reset(nil) // drop the body reference before pooling
		streamReaderPool.Put(br)
	}()
	bw := streamWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Reset(io.Discard)
		streamWriterPool.Put(bw)
	}()
	sc := getScratch()
	defer putScratch(sc)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	lines := 0
	for {
		line, err := readLine(br, sc)
		if len(line) > 0 && !blankLine(line) {
			if out, ok := s.estimateFastBytes(line, sc, false); ok {
				_, _ = bw.Write(out)
				_ = bw.WriteByte('\n')
			} else {
				s.streamLineLegacy(bw, sc, line)
			}
			lines++
			if lines%streamFlushEvery == 0 {
				_ = bw.Flush()
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				// Transport failure (or the MaxBytesReader cap) mid-batch:
				// report it in-band and end the stream.
				writeStreamError(bw, fmt.Sprintf("request body: %v", err))
			}
			break
		}
	}
	_ = bw.Flush()
}
