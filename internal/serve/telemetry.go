package serve

// telemetry.go is the server's live-traffic control loop on top of
// internal/telemetry: the /v1/telemetry snapshot endpoint, the hotset API
// that converts the observed Hd mix into characterization-budget
// recommendations, the SLO watcher with automatic pprof capture on
// breach, and the refinement loop that re-characterizes hot,
// under-budgeted models with a boosted pattern budget.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http"
	"path/filepath"
	"runtime/pprof"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/experiments"
	"hdpower/internal/faultpoint"
	"hdpower/internal/telemetry"
)

// handleTelemetry serves the full windowed-telemetry snapshot: per-plane
// quantiles, QPS and burn rates, plus the per-model Hd-class traffic mix.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tel.Snapshot())
}

// recordLegacyTraffic mirrors the fast path's profiler recording for
// estimates answered by the legacy struct-walk path, so the hotset sees
// the full Hd mix regardless of which code path served it. Traffic counts
// against the requested key: demand for a model is what the refinement
// loop budgets for, even while a fallback answers it.
func (s *Server) recordLegacyTraffic(req *estimateRequest, m, estimates int, latSeconds float64) {
	mp := s.tel.Profiler().Model(telemetry.Key{
		Module: req.Model.Module, Width: req.Model.Width, Seed: req.Model.Seed,
	}, m+1)
	if mp == nil {
		return
	}
	hint := scratchSeq.Add(1)
	if len(req.Words) > 0 {
		// Words were validated to fit the model's m (<= 64) input bits,
		// so the XOR popcount is exactly the per-cycle Hd.
		for i := 1; i < len(req.Words); i++ {
			mp.RecordClass(hint, bits.OnesCount64(req.Words[i-1]^req.Words[i]))
		}
	} else {
		for _, hd := range req.Hd {
			mp.RecordClass(hint, hd)
		}
	}
	mp.RecordRequest(hint, estimates, latSeconds)
}

// hotsetClass is one Hd class's slice of a model's budget recommendation.
type hotsetClass struct {
	Hd      int     `json:"hd"`
	Traffic uint64  `json:"traffic"` // observed estimates in this class
	Epsilon float64 `json:"epsilon"` // the class's residual coefficient deviation
	// Uniform is the class's share under the offline uniform split;
	// Recommended is its share under the traffic x epsilon apportionment.
	Uniform     int `json:"uniform"`
	Recommended int `json:"recommended"`
}

// hotsetModel is the refinement view of one profiled, cached model.
type hotsetModel struct {
	Key       string        `json:"key"`
	Patterns  int           `json:"patterns"` // current characterization budget
	Estimates uint64        `json:"estimates"`
	Classes   []hotsetClass `json:"classes"`
	// HotClasses lists Hd classes whose recommended share reaches the
	// configured multiple of their uniform share: live traffic
	// concentrates there while the coefficient still shows deviation.
	HotClasses []int `json:"hot_classes,omitempty"`
	// RecommendedPatterns is the budget the refinement loop would rebuild
	// with: doubled (capped at the serving maximum) when the model has hot
	// classes, unchanged otherwise.
	RecommendedPatterns int `json:"recommended_patterns"`

	spec BuildSpec // resolved cache spec; backs the refinement rebuild
}

// hotsetResponse is the GET /v1/telemetry/hotset payload.
type hotsetResponse struct {
	Threshold float64       `json:"threshold"`
	Models    []hotsetModel `json:"models"`
}

// handleTelemetryHotset serves the refinement recommendations derived
// from the observed traffic.
func (s *Server) handleTelemetryHotset(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.computeHotset())
}

// computeHotset joins the profiler's observed Hd mix against the cached
// models' per-class deviation reservoirs (core.Coef.Epsilon) and
// apportions each model's current pattern budget by traffic x epsilon
// (experiments.RecommendBudgets). The result is deterministic for a fixed
// recorded traffic state: models arrive key-sorted from the profiler and
// the apportionment breaks ties by class index.
func (s *Server) computeHotset() hotsetResponse {
	resp := hotsetResponse{Threshold: s.cfg.RefineThreshold, Models: []hotsetModel{}}
	for _, ms := range s.tel.Profiler().SnapshotModels() {
		model, spec, ok := s.cache.readyEntrySpec(ms.Key)
		if !ok {
			continue // profiled but not (or no longer) cached; nothing to refine
		}
		m := model.InputBits
		if m < 1 || len(model.Basic) < m {
			continue
		}
		// Characterization budgets cover Hd classes 1..m: class 0 switches
		// nothing, draws no charge, and is never characterized.
		traffic := make([]uint64, m)
		eps := make([]float64, m)
		for i := 1; i <= m; i++ {
			if i < len(ms.HdHits) {
				traffic[i-1] = ms.HdHits[i]
			}
			eps[i-1] = model.Basic[i-1].Epsilon
		}
		rec := experiments.RecommendBudgets(spec.Patterns, traffic, eps)
		uniform := experiments.RecommendBudgets(spec.Patterns, make([]uint64, m), make([]float64, m))
		hm := hotsetModel{
			Key:                 ms.Key,
			Patterns:            spec.Patterns,
			Estimates:           ms.Estimates,
			Classes:             make([]hotsetClass, m),
			RecommendedPatterns: spec.Patterns,
			spec:                spec,
		}
		for i := 0; i < m; i++ {
			hm.Classes[i] = hotsetClass{
				Hd: i + 1, Traffic: traffic[i], Epsilon: eps[i],
				Uniform: uniform[i], Recommended: rec[i],
			}
			if traffic[i] > 0 && float64(rec[i]) >= s.cfg.RefineThreshold*float64(uniform[i]) {
				hm.HotClasses = append(hm.HotClasses, i+1)
			}
		}
		if len(hm.HotClasses) > 0 {
			hm.RecommendedPatterns = spec.Patterns * 2
			if hm.RecommendedPatterns > maxBuildPatterns {
				hm.RecommendedPatterns = maxBuildPatterns
			}
		}
		resp.Models = append(resp.Models, hm)
	}
	return resp
}

// refineLoop periodically turns hotset recommendations into
// re-characterization builds. Started only when RefineInterval > 0.
func (s *Server) refineLoop() {
	defer s.workerWG.Done()
	t := time.NewTicker(s.cfg.RefineInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.refineOnce()
		}
	}
}

// refineOnce enqueues one refinement rebuild per hot, under-budgeted
// model: enough traffic to trust the mix (RefineMinEstimates), at least
// one hot class, and a recommended budget above the current one. Rebuilds
// ride the ordinary build queue (never blocking, dropped when it is full)
// and the old model serves until the refreshed one swaps in.
func (s *Server) refineOnce() {
	if s.draining.Load() {
		return
	}
	for _, hm := range s.computeHotset().Models {
		if len(hm.HotClasses) == 0 || hm.Estimates < s.cfg.RefineMinEstimates ||
			hm.RecommendedPatterns <= hm.Patterns {
			continue
		}
		spec := hm.spec
		spec.Patterns = hm.RecommendedPatterns
		ent, ok := s.cache.beginRefresh(spec)
		if !ok {
			continue // evicted, rebuilding, or already refreshing
		}
		s.buildWG.Add(1)
		select {
		case s.queue <- ent:
			s.met.queueDepth.Add(1)
			s.met.refineBuilds.Inc()
			s.writeBuildSpec(ent)
			s.log.Info("refinement rebuild enqueued", "key", ent.key,
				"patterns", spec.Patterns, "hot_classes", hm.HotClasses)
		default:
			s.buildWG.Done()
			s.cache.abandonRefresh(ent)
		}
	}
}

// sloWatcher evaluates the SLO burn state once per telemetry window.
func (s *Server) sloWatcher() {
	defer s.workerWG.Done()
	t := time.NewTicker(s.cfg.TelemetryWindow)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.checkSLO()
		}
	}
}

// checkSLO snapshots the telemetry plane and reacts to breached planes:
// a metrics increment, a warning, and (with a CaptureDir) a bounded,
// rate-limited diagnostic capture.
func (s *Server) checkSLO() {
	snap := s.tel.Snapshot()
	for _, p := range snap.Planes {
		if !p.Breached {
			continue
		}
		s.met.sloBreaches(p.Plane).Inc()
		s.log.Warn("SLO breach", "plane", p.Plane,
			"burn_fast", p.BurnFast, "burn_slow", p.BurnSlow,
			"p99_s", p.P99, "qps", p.QPS)
		if s.cfg.CaptureDir != "" {
			s.captureBreach(p.Plane, &snap)
		}
	}
}

// captureBreach writes one diagnostic capture for a breached plane: the
// telemetry snapshot that triggered it plus goroutine and heap profiles,
// named slo-<plane>-<seq>.*. Captures are bounded (CaptureMax per
// process) and rate-limited (CaptureMinInterval) so a sustained breach
// cannot fill the disk; both limits are enforced here, on the watcher
// goroutine, so no locking is needed.
func (s *Server) captureBreach(plane string, snap *telemetry.Snapshot) {
	now := time.Now()
	if s.captureCount >= s.cfg.CaptureMax ||
		(!s.lastCapture.IsZero() && now.Sub(s.lastCapture) < s.cfg.CaptureMinInterval) {
		return
	}
	s.captureCount++
	s.lastCapture = now
	base := fmt.Sprintf("slo-%s-%03d", plane, s.captureCount)
	if data, err := json.MarshalIndent(snap, "", "  "); err == nil {
		s.writeCapture(base+".telemetry.json", data)
	}
	for _, name := range []string{"goroutine", "heap"} {
		prof := pprof.Lookup(name)
		if prof == nil {
			continue
		}
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 0); err != nil {
			s.met.sloCaptureFailures.Inc()
			s.log.Warn("SLO capture profile failed", "profile", name, "err", err)
			continue
		}
		s.writeCapture(base+"."+name+".pb.gz", buf.Bytes())
	}
}

// writeCapture lands one capture file durably via atomicio, behind the
// telemetry.capture fault point so chaos runs can exercise the failure
// path.
func (s *Server) writeCapture(name string, data []byte) {
	path := filepath.Join(s.cfg.CaptureDir, name)
	err := faultpoint.Hit("telemetry.capture")
	if err == nil {
		err = atomicio.WriteFile(path, data, 0o644)
	}
	if err != nil {
		s.met.sloCaptureFailures.Inc()
		s.log.Warn("SLO capture write failed", "path", path, "err", err)
		return
	}
	s.met.sloCaptures.Inc()
}
