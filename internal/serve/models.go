package serve

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/fleet"
	"hdpower/internal/lut"
	"hdpower/internal/power"
	"hdpower/internal/sim"
)

// Build bounds. Width is the operand width per port, so the total input
// vector is at most 2*maxBuildWidth bits; the cap keeps a single request
// from scheduling an hours-long characterization.
const (
	maxBuildWidth    = 32
	maxBuildPatterns = 200000
	defaultPatterns  = 5000
)

// BuildSpec identifies one fitted model. Module, Width and Seed form the
// cache key (characterization is deterministic in them for a fixed
// pattern budget); the remaining fields shape the fit.
type BuildSpec struct {
	// Module is a catalog generator name, e.g. "csa-multiplier".
	Module string `json:"module"`
	// Width is the operand width per port.
	Width int `json:"width"`
	// Seed seeds the deterministic characterization stream.
	Seed int64 `json:"seed"`
	// Patterns is the characterization budget (default 5000).
	Patterns int `json:"patterns,omitempty"`
	// Enhanced additionally fits the stable-zero refined table.
	Enhanced bool `json:"enhanced,omitempty"`
	// ZClusters clusters the stable-zero axis (0 = full resolution).
	ZClusters int `json:"z_clusters,omitempty"`
}

// normalize applies defaults and validates against the catalog.
func (b *BuildSpec) normalize() error {
	mod, err := dwlib.Lookup(b.Module)
	if err != nil {
		return err
	}
	if b.Width < mod.MinWidth {
		return fmt.Errorf("module %s requires width >= %d, got %d", b.Module, mod.MinWidth, b.Width)
	}
	if b.Width > maxBuildWidth {
		return fmt.Errorf("width %d exceeds the serving cap %d", b.Width, maxBuildWidth)
	}
	if b.Patterns == 0 {
		b.Patterns = defaultPatterns
	}
	if b.Patterns < 0 || b.Patterns > maxBuildPatterns {
		return fmt.Errorf("patterns %d outside (0, %d]", b.Patterns, maxBuildPatterns)
	}
	if b.ZClusters < 0 {
		return fmt.Errorf("z_clusters %d is negative", b.ZClusters)
	}
	return nil
}

// Key is the model cache key.
func (b BuildSpec) Key() string {
	return fmt.Sprintf("%s/w%d/s%d", b.Module, b.Width, b.Seed)
}

// buildID derives the URL-safe identifier used by the progress and
// manifest endpoints (and manifest filenames) from a cache key: the key's
// slashes become dashes, e.g. "ripple-adder/w8/s1" -> "ripple-adder-w8-s1".
func buildID(key string) string {
	return strings.ReplaceAll(key, "/", "-")
}

// Build lifecycle states.
const (
	statusBuilding = "building"
	statusReady    = "ready"
	statusFailed   = "failed"
)

// buildEntry is one singleflight slot: every request for the same key
// shares it, and done closes exactly once when the build settles.
type buildEntry struct {
	spec BuildSpec
	key  string
	id   string // URL-safe form of key, see buildID
	done chan struct{}

	// Live progress, written by the characterization hooks on the merging
	// goroutine and read lock-free by GET /v1/models/build/{id} pollers.
	// Counts accumulate across both characterization phases, so they are
	// monotonic for the lifetime of the build.
	shardsTotal  atomic.Int64
	shardsMerged atomic.Int64
	patterns     atomic.Int64

	// Retry diagnostics for the progress endpoint: attempts counts build
	// attempts started; retry records the last transient failure (set
	// before the backoff sleep, kept after recovery so a settled build
	// still shows what it survived).
	attempts atomic.Int64
	retry    atomic.Pointer[buildRetryState]

	// refresh marks a re-characterization build started by the refinement
	// loop: the entry stays detached from the cache maps while it builds so
	// the old model keeps serving, and complete swaps it in on success.
	refresh bool

	// Guarded by the owning cache's mutex.
	status   string
	model    *core.Model
	table    *lut.Table // flattened model, published into the LUT snapshot
	err      error
	manifest *core.RunManifest
}

// buildRetryState is one transient build failure, published atomically
// for lock-free progress polls.
type buildRetryState struct {
	attempt int
	lastErr string
	backoff time.Duration
}

// progressHooks returns the hook set that feeds the entry's live progress
// counters during its build.
func (ent *buildEntry) progressHooks() *core.Hooks {
	return &core.Hooks{
		PhaseStart:        func(_ string, shards, _ int) { ent.shardsTotal.Add(int64(shards)) },
		ShardMerged:       func() { ent.shardsMerged.Add(1) },
		PatternsSimulated: func(n int) { ent.patterns.Add(int64(n)) },
	}
}

// modelSnapshot is the externally visible state of one entry.
type modelSnapshot struct {
	ID            string    `json:"id"`
	Key           string    `json:"key"`
	Spec          BuildSpec `json:"spec"`
	Status        string    `json:"status"`
	Error         string    `json:"error,omitempty"`
	InputBits     int       `json:"input_bits,omitempty"`
	BasicCoefs    int       `json:"basic_coefficients,omitempty"`
	EnhancedCoefs int       `json:"enhanced_coefficients,omitempty"`
}

// modelCache is the fitted-model LRU plus the singleflight table for
// in-flight builds. Only ready models count against the capacity;
// building entries are bounded by the build queue.
//
// Alongside the locked structures, the cache maintains an RCU snapshot of
// every ready model's flattened lut.Table (luts): the snapshot is rebuilt
// and atomically swapped whenever the ready set changes, so the estimate
// fast path resolves models with a single atomic load and map read —
// never the cache mutex.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	met      *metrics
	entries  map[string]*buildEntry
	byID     map[string]*buildEntry // same entries, keyed by buildID
	order    *list.List             // ready keys, MRU at front
	elems    map[string]*list.Element
	// refreshing marks keys with an in-flight refinement rebuild, so the
	// refine loop never stacks a second rebuild on the same model.
	refreshing map[string]bool

	luts atomic.Pointer[lutSet]
}

func newModelCache(capacity int, met *metrics) *modelCache {
	c := &modelCache{
		capacity:   capacity,
		met:        met,
		entries:    make(map[string]*buildEntry),
		byID:       make(map[string]*buildEntry),
		order:      list.New(),
		elems:      make(map[string]*list.Element),
		refreshing: make(map[string]bool),
	}
	c.luts.Store(emptyLutSet)
	return c
}

// table resolves a flattened model from the current LUT snapshot without
// taking any lock. module must be an interned catalog name (moduleIntern)
// so the composite key allocates nothing.
func (c *modelCache) table(module string, width int, seed int64) *lut.Table {
	return c.luts.Load().tables[lutKey{module: module, width: width, seed: seed}]
}

// publishLUTs rebuilds the LUT snapshot from the ready entries and swaps
// it in. Callers must hold c.mu; the new snapshot is immutable from birth,
// so readers that loaded the old one keep a consistent view.
func (c *modelCache) publishLUTs() {
	set := &lutSet{tables: make(map[lutKey]*lut.Table, len(c.entries))}
	for _, ent := range c.entries {
		if ent.status == statusReady && ent.table != nil {
			set.tables[lutKey{module: ent.spec.Module, width: ent.spec.Width, seed: ent.spec.Seed}] = ent.table
		}
	}
	c.luts.Store(set)
	c.met.lutSwaps.Add(1)
}

// lookupID returns the entry for a build ID, if present.
func (c *modelCache) lookupID(id string) (*buildEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.byID[id]
	return ent, ok
}

// ready returns the fitted model for key if present, refreshing its LRU
// position.
func (c *modelCache) ready(key string) (*core.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok || ent.status != statusReady {
		return nil, false
	}
	c.order.MoveToFront(c.elems[key])
	return ent.model, true
}

// readySibling returns a ready model for the same module and width under
// any seed — the first degradation rung when the exact key is not cached.
// Candidates are scanned in ascending seed order so the fallback is
// deterministic across requests.
func (c *modelCache) readySibling(module string, width int) (*core.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *buildEntry
	for _, ent := range c.entries {
		if ent.status != statusReady || ent.spec.Module != module || ent.spec.Width != width {
			continue
		}
		if best == nil || ent.spec.Seed < best.spec.Seed {
			best = ent
		}
	}
	if best == nil {
		return nil, false
	}
	return best.model, true
}

// begin implements the singleflight: it returns the entry for spec's key
// and whether the caller owns a brand-new build (and must enqueue it).
// A failed entry is replaced so clients can retry.
func (c *modelCache) begin(spec BuildSpec) (ent *buildEntry, started bool) {
	key := spec.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[key]; ok && ent.status != statusFailed {
		if ent.status == statusReady {
			c.order.MoveToFront(c.elems[key])
		}
		return ent, false
	}
	ent = &buildEntry{
		spec: spec, key: key, id: buildID(key),
		status: statusBuilding, done: make(chan struct{}),
	}
	c.entries[key] = ent
	c.byID[ent.id] = ent
	return ent, true
}

// beginRefresh starts a refinement rebuild for spec's key: a detached
// build entry that never displaces the ready model while it builds. It
// refuses unless the key is currently ready (there is a model worth
// refreshing) and no refresh for it is already in flight.
func (c *modelCache) beginRefresh(spec BuildSpec) (*buildEntry, bool) {
	key := spec.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.entries[key]
	if !ok || cur.status != statusReady || c.refreshing[key] {
		return nil, false
	}
	ent := &buildEntry{
		spec: spec, key: key, id: buildID(key),
		status: statusBuilding, done: make(chan struct{}), refresh: true,
	}
	c.refreshing[key] = true
	return ent, true
}

// abandonRefresh releases the refresh slot of an entry that could not be
// enqueued.
func (c *modelCache) abandonRefresh(ent *buildEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.refreshing, ent.key)
}

// readyEntrySpec returns the ready model and its build spec for key
// without touching the LRU order: the telemetry hotset peeks at every
// profiled model and must not perturb eviction.
func (c *modelCache) readyEntrySpec(key string) (*core.Model, BuildSpec, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok || ent.status != statusReady {
		return nil, BuildSpec{}, false
	}
	return ent.model, ent.spec, true
}

// abandon removes a just-begun entry that could not be enqueued (queue
// full), so later requests retry instead of waiting forever.
func (c *modelCache) abandon(ent *buildEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[ent.key] == ent {
		delete(c.entries, ent.key)
		delete(c.byID, ent.id)
	}
}

// complete settles a build, publishes the result and its flight-recorder
// manifest, and evicts beyond the LRU capacity. Successful builds are
// flattened into a lut.Table (outside the lock — flattening walks every
// coefficient) and the RCU snapshot is republished so estimate readers
// see the new (or evicted) model without ever blocking on c.mu.
func (c *modelCache) complete(ent *buildEntry, model *core.Model, err error, man *core.RunManifest) {
	var table *lut.Table
	if err == nil && model != nil {
		t, terr := lut.New(model)
		if terr == nil {
			table = t
		}
		// A model that fails to flatten (structurally invalid) still
		// serves through the slow path; nothing to do here — estimate
		// requests fall back to the struct walk.
	}
	c.mu.Lock()
	ent.manifest = man
	if ent.refresh {
		c.completeRefreshLocked(ent, model, table, err)
		c.mu.Unlock()
		close(ent.done)
		return
	}
	if err != nil {
		ent.status = statusFailed
		ent.err = err
	} else {
		ent.status = statusReady
		ent.model = model
		ent.table = table
		c.elems[ent.key] = c.order.PushFront(ent.key)
		c.evictOverCapacity()
		c.publishLUTs()
	}
	c.mu.Unlock()
	close(ent.done)
}

// completeRefreshLocked settles a refinement rebuild. On success the
// refreshed entry replaces the one it re-characterized, keeping (or
// regaining) its LRU position; the old model serves uninterrupted until
// the swap publishes. If a concurrent non-refresh build owns the key slot
// (the ready entry was evicted and re-requested mid-refresh), the
// refreshed model is dropped — the in-flight build is authoritative.
func (c *modelCache) completeRefreshLocked(ent *buildEntry, model *core.Model, table *lut.Table, err error) {
	delete(c.refreshing, ent.key)
	if err != nil {
		ent.status = statusFailed
		ent.err = err
		return
	}
	ent.status = statusReady
	ent.model = model
	ent.table = table
	cur, ok := c.entries[ent.key]
	switch {
	case ok && cur.status == statusReady:
		c.entries[ent.key] = ent
		c.byID[ent.id] = ent
		c.order.MoveToFront(c.elems[ent.key])
	case !ok:
		c.entries[ent.key] = ent
		c.byID[ent.id] = ent
		c.elems[ent.key] = c.order.PushFront(ent.key)
		c.evictOverCapacity()
	default:
		return // a live non-refresh build owns the slot
	}
	c.publishLUTs()
}

// evictOverCapacity drops LRU-tail ready models beyond the capacity.
// Callers must hold c.mu.
func (c *modelCache) evictOverCapacity() {
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		key := oldest.Value.(string)
		c.order.Remove(oldest)
		delete(c.elems, key)
		delete(c.byID, c.entries[key].id)
		delete(c.entries, key)
		c.met.cacheEvicted.Inc()
	}
}

// snapshot lists every entry, ready models in MRU order first, then
// building/failed ones.
func (c *modelCache) snapshot() []modelSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]modelSnapshot, 0, len(c.entries))
	for e := c.order.Front(); e != nil; e = e.Next() {
		out = append(out, c.entrySnapshot(c.entries[e.Value.(string)]))
	}
	for _, ent := range c.entries {
		if ent.status != statusReady {
			out = append(out, c.entrySnapshot(ent))
		}
	}
	return out
}

func (c *modelCache) entrySnapshot(ent *buildEntry) modelSnapshot {
	snap := modelSnapshot{ID: ent.id, Key: ent.key, Spec: ent.spec, Status: ent.status}
	if ent.err != nil {
		snap.Error = ent.err.Error()
	}
	if ent.model != nil {
		snap.InputBits = ent.model.InputBits
		snap.BasicCoefs, snap.EnhancedCoefs = ent.model.NumCoefficients()
	}
	return snap
}

// characterize is the real build backend: generate the netlist, wrap it
// in the reference charge meter, and run the parallel characterization
// engine with the server's observability hooks and the build context as
// the interrupt source.
func (s *Server) characterize(ctx context.Context, spec BuildSpec, hooks *core.Hooks) (*core.Model, error) {
	if s.cfg.Fleet != nil && s.cfg.Fleet.LiveWorkers() > 0 {
		return s.characterizeFleet(ctx, spec, hooks)
	}
	mod, err := dwlib.Lookup(spec.Module)
	if err != nil {
		return nil, err
	}
	nl := mod.Build(spec.Width)
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	meter, err := power.NewMeter(nl, sim.EventDriven)
	if err != nil {
		return nil, err
	}
	opt := core.CharacterizeOptions{
		Patterns:  spec.Patterns,
		Seed:      spec.Seed,
		Enhanced:  spec.Enhanced,
		ZClusters: spec.ZClusters,
		Workers:   s.cfg.CharWorkers,
		Backend:   s.cfg.Backend,
		Hooks:     hooks,
		Interrupt: func() error { return ctx.Err() },
	}
	if s.cfg.CheckpointDir != "" {
		opt.Checkpoint = core.CheckpointOptions{
			Path:        s.checkpointPath(buildID(spec.Key())),
			EveryShards: s.cfg.CheckpointEvery,
			Resume:      true,
		}
	}
	name := fmt.Sprintf("%s-w%d", spec.Module, spec.Width)
	model, err := core.Characterize(meter, name, opt)
	if core.IsCheckpointMismatch(err) {
		// A stale checkpoint from a run with different options (e.g. the
		// server was restarted with new defaults). The spec in hand is
		// authoritative; drop the leftover and characterize fresh.
		s.log.Warn("stale checkpoint does not match build; restarting fresh",
			"key", spec.Key(), "err", err)
		_ = os.Remove(opt.Checkpoint.Path)
		model, err = core.Characterize(meter, name, opt)
	}
	return model, err
}

// characterizeFleet dispatches a build to the registered worker fleet.
// The coordinator merges worker shards through the same deterministic
// state machine Characterize runs locally, so the model is bit-identical
// to the local path; the fleet just computes the shards elsewhere. The
// fleet keeps its own ledger checkpoint (<id>.fleet.json) rather than
// the local-path <id>.ckpt.json, but both use the same snapshot
// encoding.
func (s *Server) characterizeFleet(ctx context.Context, spec BuildSpec, hooks *core.Hooks) (*core.Model, error) {
	id := buildID(spec.Key())
	job := fleet.JobSpec{
		ID:        id,
		Module:    spec.Module,
		Width:     spec.Width,
		Seed:      spec.Seed,
		Patterns:  spec.Patterns,
		Enhanced:  spec.Enhanced,
		ZClusters: spec.ZClusters,
		Backend:   s.cfg.Backend.Name(),
	}
	opts := fleet.RunOptions{Hooks: hooks}
	if s.cfg.CheckpointDir != "" {
		opts.LedgerPath = filepath.Join(s.cfg.CheckpointDir, id+".fleet.json")
		opts.Resume = true
	}
	s.log.Info("build dispatched to fleet", "id", id, "workers", s.cfg.Fleet.LiveWorkers())
	return s.cfg.Fleet.RunJob(ctx, job, opts)
}
