package netlist

import (
	"errors"
	"strings"
	"testing"

	"hdpower/internal/cells"
)

// buildAdderish returns a small valid netlist: two 2-bit inputs through a
// half-adder-per-bit structure with a 2-bit sum output.
func buildAdderish(t *testing.T) *Netlist {
	t.Helper()
	n := New("verify-fixture")
	a := n.AddInputBus("a", 2)
	b := n.AddInputBus("b", 2)
	s0, _ := n.HalfAdder(a.Nets[0], b.Nets[0])
	s1, _ := n.HalfAdder(a.Nets[1], b.Nets[1])
	n.MarkOutputBus("sum", []NetID{s0, s1})
	return n
}

func diagsByCode(diags []Diag, code DiagCode) []Diag {
	var out []Diag
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestVerifyCleanNetlist(t *testing.T) {
	n := buildAdderish(t)
	diags := n.Verify()
	for _, d := range diags {
		if d.Severity == SevError {
			t.Errorf("clean netlist produced error diagnostic: %s", d)
		}
	}
	if err := n.VerifyErr(); err != nil {
		t.Fatalf("VerifyErr on clean netlist: %v", err)
	}
	// The fixture keeps every carry gate dangling, so the unreachable
	// check must see them (warnings only).
	if got := diagsByCode(diags, DiagUnreachable); len(got) == 0 {
		t.Error("expected unreachable-gate warnings for the dropped carry gates")
	}
}

func TestVerifyInjectedCombLoop(t *testing.T) {
	n := buildAdderish(t)
	// Self-loop: gate 0's first input becomes its own output net.
	out := n.GateOutput(0)
	n.RewireGateInput(0, 0, out)

	diags := diagsByCode(n.Verify(), DiagCombLoop)
	if len(diags) != 1 {
		t.Fatalf("want exactly one comb-loop diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Severity != SevError {
		t.Errorf("comb-loop severity = %v, want error", d.Severity)
	}
	wantNet := n.NetName(out)
	found := false
	for _, nm := range d.Nets {
		if nm == wantNet {
			found = true
		}
	}
	if !found {
		t.Errorf("comb-loop diagnostic %q does not name net %q", d, wantNet)
	}

	err := n.VerifyErr()
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("VerifyErr = %v, want *VerifyError", err)
	}
	if !strings.Contains(ve.Error(), wantNet) {
		t.Errorf("VerifyError %q does not name net %q", ve.Error(), wantNet)
	}
	// Finalize must agree that the surgered netlist is broken.
	if ferr := n.Finalize(); ferr == nil {
		t.Error("Finalize accepted a netlist with an injected loop")
	}
}

func TestVerifyMultiCycleLoop(t *testing.T) {
	// A two-gate cycle threaded through downstream logic: the backward
	// cycle walk must not get lost in the (also residual) downstream cone.
	n := New("two-gate-loop")
	a := n.AddInputBus("a", 1)
	g1 := n.And(a.Nets[0], a.Nets[0])
	g2 := n.Or(g1, a.Nets[0])
	g3 := n.Xor(g2, a.Nets[0]) // downstream of the cycle
	n.MarkOutputBus("y", []NetID{g3})
	// Close the cycle: the AND's second input becomes the OR's output.
	n.RewireGateInput(0, 1, g2)

	diags := diagsByCode(n.Verify(), DiagCombLoop)
	if len(diags) != 1 {
		t.Fatalf("want one comb-loop diagnostic, got %v", diags)
	}
	names := strings.Join(diags[0].Nets, " ")
	if !strings.Contains(names, n.NetName(g1)) || !strings.Contains(names, n.NetName(g2)) {
		t.Errorf("cycle %v should run through %q and %q", diags[0].Nets, n.NetName(g1), n.NetName(g2))
	}
	for _, nm := range diags[0].Nets {
		if nm == n.NetName(g3) {
			t.Errorf("cycle %v wrongly includes downstream net %q", diags[0].Nets, nm)
		}
	}
}

func TestVerifyMultiDrivenAndFloating(t *testing.T) {
	n := buildAdderish(t)
	victim := n.GateOutput(0) // s0's XOR output
	lastGate := GateID(n.NumGates() - 1)
	orphaned := n.GateOutput(lastGate)
	n.RedriveGateOutput(lastGate, victim)

	diags := n.Verify()
	multi := diagsByCode(diags, DiagMultiDriven)
	if len(multi) != 1 {
		t.Fatalf("want one multi-driven diagnostic, got %v", multi)
	}
	if multi[0].Nets[0] != n.NetName(victim) {
		t.Errorf("multi-driven diagnostic names %q, want %q", multi[0].Nets[0], n.NetName(victim))
	}
	if len(multi[0].Gates) != 2 {
		t.Errorf("multi-driven diagnostic lists gates %v, want both drivers", multi[0].Gates)
	}
	// The gate's former output net lost its only driver.
	floating := diagsByCode(diags, DiagFloatingNet)
	if len(floating) != 1 || floating[0].Nets[0] != n.NetName(orphaned) {
		t.Fatalf("want floating-net diagnostic for %q, got %v", n.NetName(orphaned), floating)
	}
	if err := n.VerifyErr(); err == nil {
		t.Fatal("VerifyErr accepted a multi-driven netlist")
	}
}

func TestVerifyWidthMismatches(t *testing.T) {
	n := buildAdderish(t)
	// Corrupt shape directly (white box): an out-of-range bus net and a
	// wrong-arity gate.
	n.outputs[0].Nets = append(n.outputs[0].Nets, NetID(9999))
	n.gates[0].in = n.gates[0].in[:1]

	diags := diagsByCode(n.Verify(), DiagWidth)
	if len(diags) != 2 {
		t.Fatalf("want 2 width-mismatch diagnostics, got %v", diags)
	}
	if err := n.VerifyErr(); err == nil {
		t.Fatal("VerifyErr accepted shape corruption")
	}
}

func TestVerifyDupBusNetWarnsOnly(t *testing.T) {
	n := New("signext")
	a := n.AddInputBus("a", 1)
	g := n.AddGate(cells.Buf, a.Nets[0])
	// Sign-extension style bus: the same net on two bits. Legal, but the
	// linter should surface it as a warning.
	n.MarkOutputBus("y", []NetID{g, g})
	diags := diagsByCode(n.Verify(), DiagDupBusNet)
	if len(diags) != 1 || diags[0].Severity != SevWarning {
		t.Fatalf("want one dup-bus-net warning, got %v", diags)
	}
	if err := n.VerifyErr(); err != nil {
		t.Fatalf("dup-bus-net must not fail VerifyErr: %v", err)
	}
}

func TestSurgeryDefinalizes(t *testing.T) {
	n := buildAdderish(t)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	n.RewireGateInput(0, 0, n.GateOutput(0))
	if err := n.Finalize(); err == nil {
		t.Fatal("Finalize after loop surgery should revalidate and fail")
	}
}
