package netlist

// verify.go is the pre-simulation netlist linter: a static pass that
// cross-checks a netlist's structure against first principles before any
// simulator compiles it. Unlike Finalize — which trusts the builder's
// denormalized driver cache and stops at the first problem — Verify
// recomputes drivers, connectivity and shape from the gate and bus tables
// alone, collects every finding, and names the nets involved, so a
// corrupted or hand-surgered circuit is rejected with an actionable
// diagnostic instead of a panic deep inside an engine.
//
// Checks:
//
//	comb-loop        combinational cycle (Kahn residue + an extracted
//	                 concrete cycle through named nets)        error
//	floating-net     a net with no driver that feeds gate pins  error
//	multi-driven     a net driven by more than one source       error
//	width-mismatch   bus/gate shape violations (empty bus,
//	                 out-of-range ids, wrong gate arity)        error
//	dup-bus-net      the same net repeated inside one bus
//	                 (legal for sign extension, worth seeing)   warning
//	unreachable-gate a gate whose output can never reach a
//	                 declared output bus                        warning
//
// internal/core runs VerifyErr before every characterization, and
// `hdpower verify` exposes the full report (with fault injection) on the
// command line.

import (
	"fmt"
	"strings"

	"hdpower/internal/cells"
)

// Severity ranks a verification diagnostic.
type Severity int

const (
	// SevWarning marks a structural oddity that simulation tolerates.
	SevWarning Severity = iota
	// SevError marks a defect that makes simulation results meaningless
	// (or impossible); VerifyErr fails the netlist on any of these.
	SevError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// DiagCode identifies one verification check.
type DiagCode string

// The verification checks, in the order Verify reports them.
const (
	DiagFloatingNet DiagCode = "floating-net"
	DiagMultiDriven DiagCode = "multi-driven"
	DiagWidth       DiagCode = "width-mismatch"
	DiagDupBusNet   DiagCode = "dup-bus-net"
	DiagCombLoop    DiagCode = "comb-loop"
	DiagUnreachable DiagCode = "unreachable-gate"
)

// Diag is one verification finding. Nets carries the names of every net
// involved (for a comb-loop, the cycle in order), so callers can report
// failures in the designer's vocabulary rather than as internal ids.
type Diag struct {
	Code     DiagCode
	Severity Severity
	// Nets names the nets involved; for a comb-loop this is the cycle in
	// traversal order (first net repeated at the end).
	Nets []string
	// Gates lists the gate instances involved (empty when not gate-specific).
	Gates []GateID
	// Msg is the human-readable finding.
	Msg string
}

// String renders the diagnostic with its named nets.
func (d Diag) String() string {
	s := fmt.Sprintf("%s: %s: %s", d.Severity, d.Code, d.Msg)
	if len(d.Nets) > 0 {
		s += " [" + strings.Join(d.Nets, " -> ") + "]"
	}
	return s
}

// VerifyError is the typed failure VerifyErr returns: every error-severity
// diagnostic of the run, with the netlist's name.
type VerifyError struct {
	Name  string
	Diags []Diag
}

func (e *VerifyError) Error() string {
	msgs := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		msgs[i] = d.String()
	}
	return fmt.Sprintf("netlist %s: verify failed with %d error(s): %s",
		e.Name, len(e.Diags), strings.Join(msgs, "; "))
}

// Verify statically lints the netlist and returns every finding, warnings
// included. It never finalizes, panics, or mutates: broken netlists that
// Finalize would reject (or that would corrupt a simulator) are exactly
// its subject matter. The result is deterministic: diagnostics are
// emitted in check order and net-id order.
func (n *Netlist) Verify() []Diag {
	var diags []Diag

	// Ground-truth driver census: ignore the cached per-net drvKind and
	// recount from the declarations (input buses, const ties) and the gate
	// table, so a desynchronized cache is caught instead of trusted.
	type driverSet struct {
		input bool
		konst bool
		gates []GateID
	}
	drivers := make([]driverSet, len(n.nets))
	for id, nt := range n.nets {
		switch nt.drvKind {
		case driverInput:
			drivers[id].input = true
		case driverConst:
			drivers[id].konst = true
		}
	}
	for gi, g := range n.gates {
		if g.out >= 0 && int(g.out) < len(n.nets) {
			drivers[g.out].gates = append(drivers[g.out].gates, GateID(gi))
		}
	}
	driverCount := func(d driverSet) int {
		c := len(d.gates)
		if d.input {
			c++
		}
		if d.konst {
			c++
		}
		return c
	}

	// floating-net: undriven nets. Undriven nets that also feed nothing
	// are reported too — they are dead weight, but still an error because
	// the builder can never produce them.
	for id := range n.nets {
		if driverCount(drivers[id]) == 0 {
			diags = append(diags, Diag{
				Code:     DiagFloatingNet,
				Severity: SevError,
				Nets:     []string{n.nets[id].name},
				Msg: fmt.Sprintf("net %q has no driver but %d fanout pin(s)",
					n.nets[id].name, len(n.nets[id].fanout)),
			})
		}
	}

	// multi-driven: more than one source on a net.
	for id := range n.nets {
		if driverCount(drivers[id]) > 1 {
			diags = append(diags, Diag{
				Code:     DiagMultiDriven,
				Severity: SevError,
				Nets:     []string{n.nets[id].name},
				Gates:    append([]GateID(nil), drivers[id].gates...),
				Msg: fmt.Sprintf("net %q is driven by %d sources (%s)",
					n.nets[id].name, driverCount(drivers[id]),
					describeDrivers(n, drivers[id].input, drivers[id].konst, drivers[id].gates)),
			})
		}
	}

	// width-mismatch and dup-bus-net: bus and gate shape.
	checkBus := func(role string, b Bus) {
		if len(b.Nets) == 0 {
			diags = append(diags, Diag{
				Code:     DiagWidth,
				Severity: SevError,
				Msg:      fmt.Sprintf("%s bus %q has width 0", role, b.Name),
			})
			return
		}
		seen := make(map[NetID]int, len(b.Nets))
		for bit, id := range b.Nets {
			if id < 0 || int(id) >= len(n.nets) {
				diags = append(diags, Diag{
					Code:     DiagWidth,
					Severity: SevError,
					Msg: fmt.Sprintf("%s bus %q bit %d references net id %d out of range (have %d nets)",
						role, b.Name, bit, id, len(n.nets)),
				})
				continue
			}
			if first, dup := seen[id]; dup {
				diags = append(diags, Diag{
					Code:     DiagDupBusNet,
					Severity: SevWarning,
					Nets:     []string{n.nets[id].name},
					Msg: fmt.Sprintf("%s bus %q repeats net %q at bits %d and %d",
						role, b.Name, n.nets[id].name, first, bit),
				})
				continue
			}
			seen[id] = bit
		}
	}
	for _, b := range n.inputs {
		checkBus("input", b)
	}
	for _, b := range n.outputs {
		checkBus("output", b)
	}
	for gi, g := range n.gates {
		c := cells.Lookup(g.kind)
		if len(g.in) != c.NumInputs {
			diags = append(diags, Diag{
				Code:     DiagWidth,
				Severity: SevError,
				Gates:    []GateID{GateID(gi)},
				Msg: fmt.Sprintf("gate %d (%s) has %d inputs, cell wants %d",
					gi, g.kind, len(g.in), c.NumInputs),
			})
		}
	}

	// comb-loop: Kahn's algorithm over the ground-truth gate graph; the
	// residual gates form the cyclic core, from which one concrete cycle
	// is extracted and reported through its net names.
	diags = append(diags, n.findLoops()...)

	// unreachable-gate: reverse reachability from the declared output
	// buses. Skipped entirely when no outputs are declared (a partially
	// built netlist), where everything would be trivially unreachable.
	if len(n.outputs) > 0 {
		diags = append(diags, n.findUnreachable()...)
	}
	return diags
}

// VerifyErr runs Verify and returns a typed *VerifyError carrying the
// error-severity diagnostics, or nil when the netlist is simulable.
// Warnings never fail a netlist.
func (n *Netlist) VerifyErr() error {
	var errs []Diag
	for _, d := range n.Verify() {
		if d.Severity == SevError {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return &VerifyError{Name: n.Name, Diags: errs}
}

func describeDrivers(n *Netlist, input, konst bool, gates []GateID) string {
	var parts []string
	if input {
		parts = append(parts, "primary input")
	}
	if konst {
		parts = append(parts, "constant tie")
	}
	for _, g := range gates {
		parts = append(parts, fmt.Sprintf("gate %d (%s)", g, n.gates[g].kind))
	}
	return strings.Join(parts, ", ")
}

// findLoops detects combinational cycles without finalizing.
func (n *Netlist) findLoops() []Diag {
	if len(n.gates) == 0 {
		return nil
	}
	// gate -> gates it feeds, derived from the ground-truth tables (a net
	// fed by gate A appearing among gate B's inputs makes an A->B edge).
	drvGate := make([]GateID, len(n.nets))
	for id := range drvGate {
		drvGate[id] = -1
	}
	for gi, g := range n.gates {
		if g.out >= 0 && int(g.out) < len(n.nets) {
			drvGate[g.out] = GateID(gi) // ties break toward the last driver
		}
	}
	indeg := make([]int, len(n.gates))
	succ := make([][]GateID, len(n.gates))
	pred := make([][]GateID, len(n.gates))
	for gi, g := range n.gates {
		for _, in := range g.in {
			if in < 0 || int(in) >= len(n.nets) {
				continue // already reported as width-mismatch
			}
			if d := drvGate[in]; d >= 0 {
				succ[d] = append(succ[d], GateID(gi))
				pred[gi] = append(pred[gi], d)
				indeg[gi]++
			}
		}
	}
	queue := make([]GateID, 0, len(n.gates))
	for gi := range n.gates {
		if indeg[gi] == 0 {
			queue = append(queue, GateID(gi))
		}
	}
	ordered := 0
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		ordered++
		for _, s := range succ[g] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if ordered == len(n.gates) {
		return nil
	}
	// The gates with residual in-degree are the cyclic core plus its
	// downstream cone. Every residual gate has at least one residual
	// predecessor (that is what kept it unordered), so walking backwards
	// along residual predecessors from any residual gate must revisit a
	// gate; the revisited segment, reversed, is one concrete cycle.
	residual := func(g GateID) bool { return indeg[g] > 0 }
	var start GateID = -1
	for gi := range n.gates {
		if residual(GateID(gi)) {
			start = GateID(gi)
			break
		}
	}
	visitedAt := make(map[GateID]int)
	var path []GateID
	g := start
	for {
		if at, seen := visitedAt[g]; seen {
			path = path[at:]
			break
		}
		visitedAt[g] = len(path)
		path = append(path, g)
		next := GateID(-1)
		for _, p := range pred[g] {
			if residual(p) {
				next = p
				break
			}
		}
		if next < 0 {
			break // unreachable: residual gates always have residual preds
		}
		g = next
	}
	// path is a cycle in predecessor order; reverse it so the report
	// reads in signal-flow direction.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	nets := make([]string, 0, len(path)+1)
	gates := make([]GateID, 0, len(path))
	for _, pg := range path {
		nets = append(nets, n.nets[n.gates[pg].out].name)
		gates = append(gates, pg)
	}
	if len(nets) > 0 {
		nets = append(nets, nets[0]) // close the cycle visually
	}
	return []Diag{{
		Code:     DiagCombLoop,
		Severity: SevError,
		Nets:     nets,
		Gates:    gates,
		Msg: fmt.Sprintf("combinational cycle: %d of %d gates are unorderable",
			len(n.gates)-ordered, len(n.gates)),
	}}
}

// findUnreachable reports gates whose output can never influence any
// declared output bus.
func (n *Netlist) findUnreachable() []Diag {
	reached := make([]bool, len(n.gates))
	var stack []GateID
	push := func(id NetID) {
		if id < 0 || int(id) >= len(n.nets) {
			return
		}
		nt := n.nets[id]
		if nt.drvKind == driverGate && int(nt.drvGate) < len(n.gates) && !reached[nt.drvGate] {
			reached[nt.drvGate] = true
			stack = append(stack, nt.drvGate)
		}
	}
	for _, b := range n.outputs {
		for _, id := range b.Nets {
			push(id)
		}
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range n.gates[g].in {
			push(in)
		}
	}
	var diags []Diag
	for gi := range n.gates {
		if !reached[gi] {
			out := n.gates[gi].out
			name := fmt.Sprintf("gate %d", gi)
			if out >= 0 && int(out) < len(n.nets) {
				name = n.nets[out].name
			}
			diags = append(diags, Diag{
				Code:     DiagUnreachable,
				Severity: SevWarning,
				Nets:     []string{name},
				Gates:    []GateID{GateID(gi)},
				Msg: fmt.Sprintf("gate %d (%s) output %q cannot reach any output bus",
					gi, n.gates[gi].kind, name),
			})
		}
	}
	return diags
}

// Surgery — controlled corruption for fault-injection studies and for
// exercising Verify. These methods deliberately bypass every guarantee
// the builder provides (single drivers, acyclicity) and de-finalize the
// netlist, so a later Finalize revalidates from scratch. They are the
// only sanctioned way to construct the broken circuits the linter and
// `hdpower verify -inject` exist to reject; production code must never
// call them.

// definalize drops the cached topological structure so analysis methods
// revalidate after surgery.
func (n *Netlist) definalize() {
	n.finalized = false
	n.order = nil
	n.levels = nil
}

// RewireGateInput redirects input pin `pin` of gate g to net id. Wiring a
// gate's own (transitive) output back into one of its inputs creates a
// combinational loop — which is the point. Panics on out-of-range
// arguments; the structural consequences are Verify's job.
func (n *Netlist) RewireGateInput(g GateID, input int, id NetID) {
	if g < 0 || int(g) >= len(n.gates) {
		panic(fmt.Sprintf("netlist: gate %d out of range", g))
	}
	if input < 0 || input >= len(n.gates[g].in) {
		panic(fmt.Sprintf("netlist: gate %d has no input %d", g, input))
	}
	n.checkNet(id)
	old := n.gates[g].in[input]
	n.gates[g].in[input] = id
	// Maintain the fanout cache on both nets so Verify's reachability and
	// Finalize's ordering see the surgered truth.
	fo := n.nets[old].fanout[:0]
	for _, p := range n.nets[old].fanout {
		if !(p.gate == g && p.input == input) {
			fo = append(fo, p)
		}
	}
	n.nets[old].fanout = fo
	n.nets[id].fanout = append(n.nets[id].fanout, pin{gate: g, input: input})
	n.definalize()
}

// RedriveGateOutput makes gate g drive net id instead of its own output
// net. The target net keeps its existing driver and becomes multi-driven;
// the gate's former output net is left with no driver (floating) but
// keeps its fanout. Panics on out-of-range arguments.
func (n *Netlist) RedriveGateOutput(g GateID, id NetID) {
	if g < 0 || int(g) >= len(n.gates) {
		panic(fmt.Sprintf("netlist: gate %d out of range", g))
	}
	n.checkNet(id)
	old := n.gates[g].out
	if old == id {
		return
	}
	n.gates[g].out = id
	n.nets[old].drvKind = driverNone
	n.definalize()
}
