// Package netlist provides the structural gate-level circuit representation
// shared by the datapath generators, the logic simulators and the charge
// model. A Netlist is a directed acyclic graph of primitive gates from the
// cells library connected by single-driver nets, with named input and
// output buses.
//
// The package is purely structural: simulation lives in internal/sim and
// charge accounting in internal/power.
package netlist

import (
	"fmt"
	"sort"

	"hdpower/internal/cells"
)

// NetID identifies a net within one Netlist.
type NetID int

// GateID identifies a gate instance within one Netlist.
type GateID int

// InvalidNet is returned for nets that do not exist.
const InvalidNet NetID = -1

// driverKind distinguishes how a net is driven.
type driverKind int

const (
	driverNone  driverKind = iota // not driven yet (an error if it persists)
	driverInput                   // primary input
	driverGate                    // gate output
	driverConst                   // constant tie cell
)

type net struct {
	name     string
	drvKind  driverKind
	drvGate  GateID // valid when drvKind == driverGate
	constVal bool   // valid when drvKind == driverConst
	fanout   []pin  // gate input pins this net feeds
}

// pin addresses one input of one gate.
type pin struct {
	gate  GateID
	input int
}

type gate struct {
	kind cells.Kind
	in   []NetID
	out  NetID
}

// Bus is a named, ordered group of nets; index 0 is the LSB.
type Bus struct {
	Name string
	Nets []NetID
}

// Width returns the number of bits in the bus.
func (b Bus) Width() int { return len(b.Nets) }

// Netlist is a combinational gate-level circuit. Create one with New and
// populate it through the builder methods; call Finalize (or any analysis
// method, which finalizes implicitly) before simulating.
type Netlist struct {
	Name string

	nets  []net
	gates []gate

	inputs  []Bus // primary input buses in declaration order
	outputs []Bus

	finalized bool
	levels    [][]GateID // gates grouped by logic level, valid after Finalize
	order     []GateID   // topological order, valid after Finalize
}

// New returns an empty netlist with the given instance name.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

func (n *Netlist) newNet(name string) NetID {
	n.nets = append(n.nets, net{name: name})
	return NetID(len(n.nets) - 1)
}

func (n *Netlist) mutable() {
	if n.finalized {
		panic("netlist: modification after Finalize")
	}
}

// AddInputBus declares a primary input bus of the given width and returns
// it. Bit 0 of the returned bus is the LSB.
func (n *Netlist) AddInputBus(name string, width int) Bus {
	n.mutable()
	if width <= 0 {
		panic(fmt.Sprintf("netlist: input bus %q with width %d", name, width))
	}
	b := Bus{Name: name, Nets: make([]NetID, width)}
	for i := range b.Nets {
		id := n.newNet(fmt.Sprintf("%s[%d]", name, i))
		n.nets[id].drvKind = driverInput
		b.Nets[i] = id
	}
	n.inputs = append(n.inputs, b)
	return b
}

// MarkOutputBus declares an output bus over existing nets, LSB first.
func (n *Netlist) MarkOutputBus(name string, nets []NetID) Bus {
	n.mutable()
	if len(nets) == 0 {
		panic(fmt.Sprintf("netlist: empty output bus %q", name))
	}
	for _, id := range nets {
		n.checkNet(id)
	}
	b := Bus{Name: name, Nets: append([]NetID(nil), nets...)}
	n.outputs = append(n.outputs, b)
	return b
}

// Const returns a net tied to the given constant value. Repeated calls
// with the same value return the same net.
func (n *Netlist) Const(v bool) NetID {
	n.mutable()
	for id, nt := range n.nets {
		if nt.drvKind == driverConst && nt.constVal == v {
			return NetID(id)
		}
	}
	name := "const0"
	if v {
		name = "const1"
	}
	id := n.newNet(name)
	n.nets[id].drvKind = driverConst
	n.nets[id].constVal = v
	return id
}

// AddGate instantiates a gate of the given kind driven by the given input
// nets and returns its freshly created output net.
func (n *Netlist) AddGate(kind cells.Kind, in ...NetID) NetID {
	n.mutable()
	c := cells.Lookup(kind)
	if len(in) != c.NumInputs {
		panic(fmt.Sprintf("netlist: %s expects %d inputs, got %d", kind, c.NumInputs, len(in)))
	}
	for _, id := range in {
		n.checkNet(id)
	}
	g := GateID(len(n.gates))
	out := n.newNet(fmt.Sprintf("%s_%d", kind, g))
	n.nets[out].drvKind = driverGate
	n.nets[out].drvGate = g
	n.gates = append(n.gates, gate{kind: kind, in: append([]NetID(nil), in...), out: out})
	for i, id := range in {
		n.nets[id].fanout = append(n.nets[id].fanout, pin{gate: g, input: i})
	}
	return out
}

func (n *Netlist) checkNet(id NetID) {
	if id < 0 || int(id) >= len(n.nets) {
		panic(fmt.Sprintf("netlist: net %d out of range (have %d nets)", id, len(n.nets)))
	}
}

// Convenience single-gate builders used heavily by the generators.

// Not returns !a.
func (n *Netlist) Not(a NetID) NetID { return n.AddGate(cells.Inv, a) }

// And returns a & b.
func (n *Netlist) And(a, b NetID) NetID { return n.AddGate(cells.And2, a, b) }

// Or returns a | b.
func (n *Netlist) Or(a, b NetID) NetID { return n.AddGate(cells.Or2, a, b) }

// Xor returns a ^ b.
func (n *Netlist) Xor(a, b NetID) NetID { return n.AddGate(cells.Xor2, a, b) }

// Xnor returns !(a ^ b).
func (n *Netlist) Xnor(a, b NetID) NetID { return n.AddGate(cells.Xnor2, a, b) }

// Nand returns !(a & b).
func (n *Netlist) Nand(a, b NetID) NetID { return n.AddGate(cells.Nand2, a, b) }

// Nor returns !(a | b).
func (n *Netlist) Nor(a, b NetID) NetID { return n.AddGate(cells.Nor2, a, b) }

// Mux returns sel ? d1 : d0.
func (n *Netlist) Mux(d0, d1, sel NetID) NetID { return n.AddGate(cells.Mux2, d0, d1, sel) }

// HalfAdder returns (sum, carry) = a + b built from an XOR and an AND.
func (n *Netlist) HalfAdder(a, b NetID) (sum, carry NetID) {
	return n.Xor(a, b), n.And(a, b)
}

// FullAdder returns (sum, carry) = a + b + cin using the standard
// two-half-adder decomposition.
func (n *Netlist) FullAdder(a, b, cin NetID) (sum, carry NetID) {
	s1 := n.Xor(a, b)
	sum = n.Xor(s1, cin)
	c1 := n.And(a, b)
	c2 := n.And(s1, cin)
	carry = n.Or(c1, c2)
	return sum, carry
}

// NumNets returns the total number of nets.
func (n *Netlist) NumNets() int { return len(n.nets) }

// NumGates returns the total number of gate instances.
func (n *Netlist) NumGates() int { return len(n.gates) }

// Inputs returns the primary input buses in declaration order.
func (n *Netlist) Inputs() []Bus { return n.inputs }

// Outputs returns the output buses in declaration order.
func (n *Netlist) Outputs() []Bus { return n.outputs }

// NumInputBits returns the total number of primary input bits across all
// input buses — the m of the paper's Hd model.
func (n *Netlist) NumInputBits() int {
	total := 0
	for _, b := range n.inputs {
		total += b.Width()
	}
	return total
}

// InputNets returns all primary input nets flattened in bus declaration
// order, each bus LSB first. This ordering defines the input vector layout
// used by the simulators and the Hd model.
func (n *Netlist) InputNets() []NetID {
	out := make([]NetID, 0, n.NumInputBits())
	for _, b := range n.inputs {
		out = append(out, b.Nets...)
	}
	return out
}

// GateKind returns the kind of gate g.
func (n *Netlist) GateKind(g GateID) cells.Kind { return n.gates[g].kind }

// GateInputs returns the input nets of gate g.
func (n *Netlist) GateInputs(g GateID) []NetID { return n.gates[g].in }

// GateOutput returns the output net of gate g.
func (n *Netlist) GateOutput(g GateID) NetID { return n.gates[g].out }

// NetName returns the debug name of a net.
func (n *Netlist) NetName(id NetID) string {
	n.checkNet(id)
	return n.nets[id].name
}

// NetFanout returns the number of gate input pins the net drives.
func (n *Netlist) NetFanout(id NetID) int {
	n.checkNet(id)
	return len(n.nets[id].fanout)
}

// IsConst reports whether the net is a constant tie, and its value.
func (n *Netlist) IsConst(id NetID) (val, isConst bool) {
	n.checkNet(id)
	nt := n.nets[id]
	return nt.constVal, nt.drvKind == driverConst
}

// IsInput reports whether the net is a primary input.
func (n *Netlist) IsInput(id NetID) bool {
	n.checkNet(id)
	return n.nets[id].drvKind == driverInput
}

// FanoutPins returns (gate, pin-index) pairs fed by net id. The returned
// slices alias internal state and must not be modified.
func (n *Netlist) FanoutPins(id NetID) []struct {
	Gate  GateID
	Input int
} {
	n.checkNet(id)
	out := make([]struct {
		Gate  GateID
		Input int
	}, len(n.nets[id].fanout))
	for i, p := range n.nets[id].fanout {
		out[i] = struct {
			Gate  GateID
			Input int
		}{p.gate, p.input}
	}
	return out
}

// Finalize validates the netlist (single drivers, acyclicity) and computes
// the topological gate ordering and level structure. It is idempotent, and
// implied by TopoOrder/Levels. After Finalize the netlist is immutable.
func (n *Netlist) Finalize() error {
	if n.finalized {
		return nil
	}
	for id, nt := range n.nets {
		if nt.drvKind == driverNone {
			return fmt.Errorf("netlist %s: net %q (id %d) has no driver", n.Name, nt.name, id)
		}
	}
	// Kahn's algorithm over gates: a gate is ready when all its input nets
	// are primary inputs, constants, or outputs of already-ordered gates.
	indeg := make([]int, len(n.gates))
	for gi, g := range n.gates {
		for _, in := range g.in {
			if n.nets[in].drvKind == driverGate {
				indeg[gi]++
			}
		}
	}
	level := make([]int, len(n.gates))
	queue := make([]GateID, 0, len(n.gates))
	for gi := range n.gates {
		if indeg[gi] == 0 {
			queue = append(queue, GateID(gi))
			level[gi] = 0
		}
	}
	order := make([]GateID, 0, len(n.gates))
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		out := n.gates[g].out
		for _, p := range n.nets[out].fanout {
			indeg[p.gate]--
			if lvl := level[g] + 1; lvl > level[p.gate] {
				level[p.gate] = lvl
			}
			if indeg[p.gate] == 0 {
				queue = append(queue, p.gate)
			}
		}
	}
	if len(order) != len(n.gates) {
		return fmt.Errorf("netlist %s: combinational cycle detected (%d of %d gates orderable)",
			n.Name, len(order), len(n.gates))
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	levels := make([][]GateID, maxLevel+1)
	for gi, l := range level {
		levels[l] = append(levels[l], GateID(gi))
	}
	n.order = order
	n.levels = levels
	n.finalized = true
	return nil
}

// mustFinalize finalizes or panics; analysis helpers use it because a
// generator-produced netlist failing validation is a programming error.
func (n *Netlist) mustFinalize() {
	if err := n.Finalize(); err != nil {
		panic(err)
	}
}

// TopoOrder returns the gates in a valid evaluation order.
func (n *Netlist) TopoOrder() []GateID {
	n.mustFinalize()
	return n.order
}

// Levels returns the gates grouped by logic level; Levels()[0] contains
// gates fed only by inputs and constants.
func (n *Netlist) Levels() [][]GateID {
	n.mustFinalize()
	return n.levels
}

// Depth returns the number of logic levels (0 for a gateless netlist).
func (n *Netlist) Depth() int {
	n.mustFinalize()
	return len(n.levels)
}

// piDriverCap is the output capacitance assumed for the (external) driver
// of a primary input net and for constant ties.
const piDriverCap = 1.0

// NetCap returns the total switched capacitance of a net: the driver's
// output capacitance plus the input capacitance of every pin it fans out
// to. This value, times the number of transitions, is the net's charge.
func (n *Netlist) NetCap(id NetID) float64 {
	n.checkNet(id)
	nt := n.nets[id]
	var c float64
	switch nt.drvKind {
	case driverGate:
		c = cells.Lookup(n.gates[nt.drvGate].kind).OutputCap
	default:
		c = piDriverCap
	}
	for _, p := range nt.fanout {
		c += cells.Lookup(n.gates[p.gate].kind).InputCap
	}
	return c
}

// TotalCap returns the sum of NetCap over all nets — a size/complexity
// proxy comparable to the module capacitance used by the DBT model.
func (n *Netlist) TotalCap() float64 {
	var total float64
	for id := range n.nets {
		total += n.NetCap(NetID(id))
	}
	return total
}

// Stats summarizes netlist structure.
type Stats struct {
	Name      string
	Inputs    int
	Outputs   int
	Nets      int
	Gates     int
	Depth     int
	TotalCap  float64
	GateCount map[string]int // per gate-kind instance counts
}

// Stats computes structural statistics.
func (n *Netlist) Stats() Stats {
	n.mustFinalize()
	counts := make(map[string]int)
	for _, g := range n.gates {
		counts[g.kind.String()]++
	}
	outBits := 0
	for _, b := range n.outputs {
		outBits += b.Width()
	}
	return Stats{
		Name:      n.Name,
		Inputs:    n.NumInputBits(),
		Outputs:   outBits,
		Nets:      len(n.nets),
		Gates:     len(n.gates),
		Depth:     len(n.levels),
		TotalCap:  n.TotalCap(),
		GateCount: counts,
	}
}

// String renders the stats compactly, with gate kinds sorted for
// determinism.
func (s Stats) String() string {
	kinds := make([]string, 0, len(s.GateCount))
	for k := range s.GateCount {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := fmt.Sprintf("%s: %d in, %d out, %d gates, %d nets, depth %d, cap %.1f [",
		s.Name, s.Inputs, s.Outputs, s.Gates, s.Nets, s.Depth, s.TotalCap)
	for i, k := range kinds {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", k, s.GateCount[k])
	}
	return out + "]"
}
