package netlist

import (
	"strings"
	"testing"

	"hdpower/internal/cells"
)

// buildXorPair returns a tiny netlist: out = (a^b) & b.
func buildXorPair(t *testing.T) (*Netlist, Bus) {
	t.Helper()
	n := New("tiny")
	a := n.AddInputBus("a", 1)
	b := n.AddInputBus("b", 1)
	x := n.Xor(a.Nets[0], b.Nets[0])
	o := n.And(x, b.Nets[0])
	bus := n.MarkOutputBus("y", []NetID{o})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n, bus
}

func TestBuilderBasics(t *testing.T) {
	n, _ := buildXorPair(t)
	if n.NumGates() != 2 {
		t.Errorf("gates = %d, want 2", n.NumGates())
	}
	if n.NumInputBits() != 2 {
		t.Errorf("input bits = %d, want 2", n.NumInputBits())
	}
	if got := len(n.InputNets()); got != 2 {
		t.Errorf("InputNets len = %d", got)
	}
	if n.Depth() != 2 {
		t.Errorf("depth = %d, want 2", n.Depth())
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	n := New("chain")
	a := n.AddInputBus("a", 1)
	cur := a.Nets[0]
	var gates []NetID
	for i := 0; i < 10; i++ {
		cur = n.Not(cur)
		gates = append(gates, cur)
	}
	n.MarkOutputBus("y", []NetID{cur})
	order := n.TopoOrder()
	pos := make(map[GateID]int)
	for i, g := range order {
		pos[g] = i
	}
	for _, g := range order {
		for _, in := range n.GateInputs(g) {
			if n.IsInput(in) {
				continue
			}
			if _, isC := n.IsConst(in); isC {
				continue
			}
			// The driving gate must appear earlier in the order.
			for _, g2 := range order {
				if n.GateOutput(g2) == in && pos[g2] >= pos[g] {
					t.Fatalf("gate %d ordered before its driver %d", g, g2)
				}
			}
		}
	}
	_ = gates
	if n.Depth() != 10 {
		t.Errorf("chain depth = %d, want 10", n.Depth())
	}
}

func TestConstDeduplication(t *testing.T) {
	n := New("consts")
	c0 := n.Const(false)
	c1 := n.Const(true)
	if c0 == c1 {
		t.Fatal("const 0 and 1 share a net")
	}
	if n.Const(false) != c0 || n.Const(true) != c1 {
		t.Error("Const not deduplicated")
	}
	v, isC := n.IsConst(c1)
	if !isC || !v {
		t.Errorf("IsConst(c1) = %v,%v", v, isC)
	}
}

func TestAddGateArityPanics(t *testing.T) {
	n := New("bad")
	a := n.AddInputBus("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("AddGate with wrong arity did not panic")
		}
	}()
	n.AddGate(cells.And2, a.Nets[0])
}

func TestAddGateBadNetPanics(t *testing.T) {
	n := New("bad")
	defer func() {
		if recover() == nil {
			t.Fatal("AddGate with bogus net did not panic")
		}
	}()
	n.AddGate(cells.Inv, NetID(42))
}

func TestModificationAfterFinalizePanics(t *testing.T) {
	n, _ := buildXorPair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("AddInputBus after Finalize did not panic")
		}
	}()
	n.AddInputBus("late", 1)
}

func TestFinalizeIdempotent(t *testing.T) {
	n, _ := buildXorPair(t)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestNetCap(t *testing.T) {
	n, _ := buildXorPair(t)
	// Input net b feeds the XOR2 and the AND2: cap = piDriver + inCap(XOR2) + inCap(AND2).
	bNet := n.Inputs()[1].Nets[0]
	want := 1.0 + cells.Lookup(cells.Xor2).InputCap + cells.Lookup(cells.And2).InputCap
	if got := n.NetCap(bNet); got != want {
		t.Errorf("NetCap(b) = %v, want %v", got, want)
	}
	// Output net of the AND has no fanout: cap = outCap(AND2).
	outNet := n.Outputs()[0].Nets[0]
	if got := n.NetCap(outNet); got != cells.Lookup(cells.And2).OutputCap {
		t.Errorf("NetCap(out) = %v", got)
	}
}

func TestTotalCapPositiveAndAdditive(t *testing.T) {
	n, _ := buildXorPair(t)
	var sum float64
	for id := 0; id < n.NumNets(); id++ {
		sum += n.NetCap(NetID(id))
	}
	if got := n.TotalCap(); got != sum {
		t.Errorf("TotalCap = %v, want %v", got, sum)
	}
	if sum <= 0 {
		t.Error("TotalCap not positive")
	}
}

func TestStats(t *testing.T) {
	n, _ := buildXorPair(t)
	s := n.Stats()
	if s.Gates != 2 || s.Inputs != 2 || s.Outputs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.GateCount["XOR2"] != 1 || s.GateCount["AND2"] != 1 {
		t.Errorf("gate counts = %v", s.GateCount)
	}
	str := s.String()
	if !strings.Contains(str, "XOR2:1") || !strings.Contains(str, "tiny") {
		t.Errorf("Stats.String() = %q", str)
	}
}

func TestFullAdderStructure(t *testing.T) {
	n := New("fa")
	a := n.AddInputBus("a", 1)
	b := n.AddInputBus("b", 1)
	c := n.AddInputBus("c", 1)
	s, co := n.FullAdder(a.Nets[0], b.Nets[0], c.Nets[0])
	n.MarkOutputBus("s", []NetID{s})
	n.MarkOutputBus("co", []NetID{co})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 5 {
		t.Errorf("full adder gates = %d, want 5", n.NumGates())
	}
}

func TestEmptyOutputBusPanics(t *testing.T) {
	n := New("bad")
	defer func() {
		if recover() == nil {
			t.Fatal("empty output bus did not panic")
		}
	}()
	n.MarkOutputBus("y", nil)
}

func TestZeroWidthInputPanics(t *testing.T) {
	n := New("bad")
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width input bus did not panic")
		}
	}()
	n.AddInputBus("a", 0)
}

func TestWriteDOT(t *testing.T) {
	n, _ := buildXorPair(t)
	var sb strings.Builder
	if err := n.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "XOR2", "AND2", "a[0]", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestFanoutPins(t *testing.T) {
	n, _ := buildXorPair(t)
	bNet := n.Inputs()[1].Nets[0]
	pins := n.FanoutPins(bNet)
	if len(pins) != 2 {
		t.Fatalf("fanout pins = %d, want 2", len(pins))
	}
	if n.NetFanout(bNet) != 2 {
		t.Errorf("NetFanout = %d", n.NetFanout(bNet))
	}
}
