package netlist

import (
	"fmt"

	"hdpower/internal/cells"
)

// Sweep returns a functionally equivalent copy of the netlist with
// constants propagated and unreachable logic removed:
//
//   - gates whose inputs are all constants are folded away,
//   - gates with some constant inputs are strength-reduced to smaller
//     gates where the cell library allows (e.g. AND2(x, 1) → BUF(x),
//     XOR2(x, 1) → INV(x)),
//   - gates whose outputs reach no output bus are deleted.
//
// Primary input buses are preserved verbatim (including unused bits), so
// the swept netlist accepts the same input vectors. Generators in this
// repository mostly avoid constant-input gates by construction; Sweep is
// the safety net for hand-built or composed netlists.
func (n *Netlist) Sweep() (*Netlist, error) {
	if err := n.Finalize(); err != nil {
		return nil, err
	}
	out := New(n.Name + "_swept")

	// Map old nets to new nets, or to constants.
	type mapping = netMapping
	remap := make([]mapping, n.NumNets())
	seen := make([]bool, n.NumNets())

	for _, b := range n.inputs {
		nb := out.AddInputBus(b.Name, b.Width())
		for i, old := range b.Nets {
			remap[old] = mapping{net: nb.Nets[i]}
			seen[old] = true
		}
	}
	for id := 0; id < n.NumNets(); id++ {
		if v, isC := n.IsConst(NetID(id)); isC {
			remap[id] = mapping{isConst: true, val: v}
			seen[id] = true
		}
	}

	// Liveness: walk back from output buses.
	live := make([]bool, n.NumGates())
	var mark func(id NetID)
	mark = func(id NetID) {
		if n.IsInput(id) {
			return
		}
		if _, isC := n.IsConst(id); isC {
			return
		}
		for g := range n.gates {
			if n.gates[g].out == id {
				if live[g] {
					return
				}
				live[g] = true
				for _, in := range n.gates[g].in {
					mark(in)
				}
				return
			}
		}
	}
	for _, b := range n.outputs {
		for _, id := range b.Nets {
			mark(id)
		}
	}

	// Rebuild live gates in topological order with folding.
	for _, g := range n.TopoOrder() {
		if !live[g] {
			continue
		}
		old := n.gates[g]
		ins := make([]mapping, len(old.in))
		allConst := true
		for i, in := range old.in {
			if !seen[in] {
				return nil, fmt.Errorf("netlist: sweep order violated at gate %d", g)
			}
			ins[i] = remap[in]
			if !ins[i].isConst {
				allConst = false
			}
		}
		if allConst {
			vals := make([]bool, len(ins))
			for i, m := range ins {
				vals[i] = m.val
			}
			remap[old.out] = mapping{isConst: true, val: cells.Eval(old.kind, vals)}
			seen[old.out] = true
			continue
		}
		if m, ok := foldPartial(out, old.kind, ins); ok {
			remap[old.out] = m
			seen[old.out] = true
			continue
		}
		// No folding possible: rebuild verbatim, materializing constant
		// inputs as tie nets.
		newIns := make([]NetID, len(ins))
		for i, m := range ins {
			if m.isConst {
				newIns[i] = out.Const(m.val)
			} else {
				newIns[i] = m.net
			}
		}
		remap[old.out] = mapping{net: out.AddGate(old.kind, newIns...)}
		seen[old.out] = true
	}

	for _, b := range n.outputs {
		nets := make([]NetID, len(b.Nets))
		for i, id := range b.Nets {
			m := remap[id]
			if m.isConst {
				nets[i] = out.Const(m.val)
			} else {
				nets[i] = m.net
			}
		}
		out.MarkOutputBus(b.Name, nets)
	}
	if err := out.Finalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// foldPartial strength-reduces two-input gates with exactly one constant
// input. Returns ok=false when no reduction applies.
func foldPartial(out *Netlist, kind cells.Kind, ins []netMapping) (netMapping, bool) {
	if len(ins) != 2 {
		return netMapping{}, false
	}
	var c bool
	var x netMapping
	switch {
	case ins[0].isConst && !ins[1].isConst:
		c, x = ins[0].val, ins[1]
	case ins[1].isConst && !ins[0].isConst:
		c, x = ins[1].val, ins[0]
	default:
		return netMapping{}, false
	}
	passthrough := func() (netMapping, bool) { return x, true }
	constant := func(v bool) (netMapping, bool) { return netMapping{isConst: true, val: v}, true }
	invert := func() (netMapping, bool) {
		return netMapping{net: out.Not(x.net)}, true
	}
	switch kind {
	case cells.And2:
		if c {
			return passthrough()
		}
		return constant(false)
	case cells.Or2:
		if c {
			return constant(true)
		}
		return passthrough()
	case cells.Nand2:
		if c {
			return invert()
		}
		return constant(true)
	case cells.Nor2:
		if c {
			return constant(false)
		}
		return invert()
	case cells.Xor2:
		if c {
			return invert()
		}
		return passthrough()
	case cells.Xnor2:
		if c {
			return passthrough()
		}
		return invert()
	}
	return netMapping{}, false
}

// netMapping maps an original net to its replacement: either a net in
// the swept netlist or a known constant value.
type netMapping struct {
	net     NetID
	isConst bool
	val     bool
}
