package netlist

import (
	"fmt"
	"io"
)

// WriteDOT emits the netlist as a Graphviz digraph for inspection and
// documentation. Primary inputs are boxes, constants are diamonds, gates
// are ellipses labelled with kind and id, and output nets are doubled
// circles.
func (n *Netlist) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", n.Name); err != nil {
		return err
	}
	outNets := make(map[NetID]string)
	for _, b := range n.outputs {
		for i, id := range b.Nets {
			outNets[id] = fmt.Sprintf("%s[%d]", b.Name, i)
		}
	}
	// Source nodes: inputs and constants.
	for id, nt := range n.nets {
		switch nt.drvKind {
		case driverInput:
			if _, err := fmt.Fprintf(w, "  n%d [shape=box,label=%q];\n", id, nt.name); err != nil {
				return err
			}
		case driverConst:
			if _, err := fmt.Fprintf(w, "  n%d [shape=diamond,label=%q];\n", id, nt.name); err != nil {
				return err
			}
		}
	}
	// Gates and their wiring.
	for gi, g := range n.gates {
		label := fmt.Sprintf("%s#%d", g.kind, gi)
		if name, ok := outNets[g.out]; ok {
			label += "\\n-> " + name
		}
		if _, err := fmt.Fprintf(w, "  g%d [label=%q];\n", gi, label); err != nil {
			return err
		}
		for _, in := range g.in {
			src := n.nets[in]
			var from string
			if src.drvKind == driverGate {
				from = fmt.Sprintf("g%d", src.drvGate)
			} else {
				from = fmt.Sprintf("n%d", in)
			}
			if _, err := fmt.Fprintf(w, "  %s -> g%d;\n", from, gi); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
