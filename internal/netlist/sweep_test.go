package netlist

import (
	"math/rand"
	"testing"

	"hdpower/internal/cells"
)

// evalNetlist computes an output bus value by direct recursive evaluation
// (test-local oracle, no simulator dependency to avoid an import cycle).
func evalNetlist(t *testing.T, n *Netlist, inputs uint64, busName string) uint64 {
	t.Helper()
	memo := make(map[NetID]bool)
	inputNets := n.InputNets()
	var eval func(id NetID) bool
	eval = func(id NetID) bool {
		if v, ok := memo[id]; ok {
			return v
		}
		if v, isC := n.IsConst(id); isC {
			return v
		}
		for i, in := range inputNets {
			if in == id {
				return inputs>>uint(i)&1 == 1
			}
		}
		for g := 0; g < n.NumGates(); g++ {
			if n.GateOutput(GateID(g)) == id {
				ins := n.GateInputs(GateID(g))
				vals := make([]bool, len(ins))
				for i, in := range ins {
					vals[i] = eval(in)
				}
				v := cells.Eval(n.GateKind(GateID(g)), vals)
				memo[id] = v
				return v
			}
		}
		t.Fatalf("net %d undriven", id)
		return false
	}
	for _, b := range n.Outputs() {
		if b.Name == busName {
			var out uint64
			for i, id := range b.Nets {
				if eval(id) {
					out |= 1 << uint(i)
				}
			}
			return out
		}
	}
	t.Fatalf("no output bus %q", busName)
	return 0
}

// constLadenCircuit builds a circuit full of constant-input and dead
// gates: y[0] = a&1 (buf), y[1] = a^1 (inv), y[2] = (a|0)&(b&0 -> 0) = 0,
// plus an unused XOR tree.
func constLadenCircuit() *Netlist {
	n := New("laden")
	a := n.AddInputBus("a", 1)
	b := n.AddInputBus("b", 1)
	one := n.Const(true)
	zero := n.Const(false)
	y0 := n.And(a.Nets[0], one)
	y1 := n.Xor(a.Nets[0], one)
	bz := n.And(b.Nets[0], zero)
	y2 := n.And(n.Or(a.Nets[0], zero), bz)
	// dead logic
	d := n.Xor(a.Nets[0], b.Nets[0])
	n.Xor(d, one)
	n.MarkOutputBus("y", []NetID{y0, y1, y2})
	return n
}

func TestSweepPreservesFunction(t *testing.T) {
	orig := constLadenCircuit()
	swept, err := orig.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	for in := uint64(0); in < 4; in++ {
		want := evalNetlist(t, constLadenCircuit(), in, "y")
		got := evalNetlist(t, swept, in, "y")
		if got != want {
			t.Errorf("input %b: swept %b, want %b", in, got, want)
		}
	}
}

func TestSweepRemovesGates(t *testing.T) {
	orig := constLadenCircuit()
	swept, err := orig.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if swept.NumGates() >= orig.NumGates() {
		t.Errorf("sweep did not shrink: %d -> %d gates", orig.NumGates(), swept.NumGates())
	}
	// y0 = a&1 should fold to zero extra gates (bus references the input
	// net directly), y1 to one inverter, y2 to const0, dead tree gone:
	// the swept netlist needs at most 1 gate.
	if swept.NumGates() > 1 {
		t.Errorf("swept netlist has %d gates, want <= 1", swept.NumGates())
	}
}

func TestSweepPreservesInputLayout(t *testing.T) {
	swept, err := constLadenCircuit().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if swept.NumInputBits() != 2 {
		t.Errorf("input bits = %d, want 2", swept.NumInputBits())
	}
	ins := swept.Inputs()
	if ins[0].Name != "a" || ins[1].Name != "b" {
		t.Errorf("input buses = %v, %v", ins[0].Name, ins[1].Name)
	}
}

func TestSweepIdempotentOnCleanCircuits(t *testing.T) {
	// A circuit with no constants or dead logic must survive unchanged in
	// size.
	n := New("clean")
	a := n.AddInputBus("a", 4)
	cur := a.Nets[0]
	for i := 1; i < 4; i++ {
		cur = n.Xor(cur, a.Nets[i])
	}
	n.MarkOutputBus("y", []NetID{cur})
	swept, err := n.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if swept.NumGates() != n.NumGates() {
		t.Errorf("clean circuit changed: %d -> %d gates", n.NumGates(), swept.NumGates())
	}
}

func TestSweepRandomCircuitsPreserveFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		build := func() *Netlist {
			r := rand.New(rand.NewSource(int64(trial)))
			n := New("fuzz")
			bus := n.AddInputBus("a", 4)
			pool := append([]NetID(nil), bus.Nets...)
			pool = append(pool, n.Const(false), n.Const(true))
			kinds := cells.Kinds()
			var outs []NetID
			for g := 0; g < 30; g++ {
				kind := kinds[r.Intn(len(kinds))]
				c := cells.Lookup(kind)
				in := make([]NetID, c.NumInputs)
				for i := range in {
					in[i] = pool[r.Intn(len(pool))]
				}
				out := n.AddGate(kind, in...)
				pool = append(pool, out)
				outs = append(outs, out)
			}
			n.MarkOutputBus("y", outs[len(outs)-3:])
			return n
		}
		swept, err := build().Sweep()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 16; probe++ {
			in := rng.Uint64() & 0xf
			want := evalNetlist(t, build(), in, "y")
			got := evalNetlist(t, swept, in, "y")
			if got != want {
				t.Fatalf("trial %d input %x: swept %x, want %x", trial, in, got, want)
			}
		}
	}
}
