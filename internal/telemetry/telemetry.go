// Package telemetry is the live-traffic measurement plane for the hdpower
// serving stack. It complements internal/obs (cumulative Prometheus-style
// metrics) with the time-local views an operator and the refinement loop
// actually act on:
//
//   - windowed latency aggregation (window.go): a rotating ring of
//     fixed-duration windows over obs.Histogram-style buckets, answering
//     "what are p50/p99/p999 and QPS right now" rather than since boot,
//     plus multi-window SLO burn rates in the style of the SRE workbook —
//     a breach requires both the fast and the slow span to burn error
//     budget faster than the configured threshold, so a single slow
//     request cannot page and a sustained regression cannot hide;
//   - a sharded lock-free traffic profiler (profile.go) recording the
//     per-model × per-Hd-class hit mix and per-model latency of estimate
//     traffic, cheap enough to sit inside the zero-allocation fast path.
//
// The package is deliberately clock-free: every entry point takes the
// current time from the caller (or Config.Now), so the deterministic
// packages' reproducibility lint applies and tests can drive the window
// ring with a synthetic clock.
package telemetry

import (
	"errors"
	"runtime"
	"sort"
	"time"

	"hdpower/internal/obs"
)

// SLO is a latency service-level objective for one traffic plane: at least
// Objective of requests must complete within LatencyBudget seconds.
type SLO struct {
	// LatencyBudget is the per-request latency budget in seconds; a
	// request slower than this (or failing with a server error) burns
	// error budget.
	LatencyBudget float64
	// Objective is the target good fraction, e.g. 0.999.
	Objective float64
	// BreachBurn is the burn-rate threshold: the SLO is breached when
	// both the fast and the slow window span burn error budget at >=
	// this multiple of the sustainable rate. Zero selects 2.
	BreachBurn float64
}

func (s SLO) withDefaults() SLO {
	if s.Objective <= 0 || s.Objective >= 1 {
		s.Objective = 0.999
	}
	if s.BreachBurn <= 0 {
		s.BreachBurn = 2
	}
	return s
}

// Config parameterizes a Telemetry instance.
type Config struct {
	// Now supplies the clock. Required: the package never consults
	// time.Now itself.
	Now func() time.Time
	// Window is the width of one aggregation window. Zero selects 10s.
	Window time.Duration
	// Windows is the ring length; the slow burn span and the quantile
	// estimates cover Windows*Window of history. Zero selects 30 (five
	// minutes at the default width).
	Windows int
	// FastWindows is the fast burn span in windows. Zero selects 3.
	FastWindows int
	// Bounds are the latency bucket upper bounds in seconds. Nil selects
	// obs.LatencyBounds.
	Bounds []float64
	// MaxModels caps the number of distinct models the profiler tracks;
	// registrations beyond the cap are counted in DroppedModels instead
	// of growing without bound. Zero selects 128.
	MaxModels int
	// Shards is the profiler shard count per model. Zero selects
	// GOMAXPROCS capped at 16.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Windows <= 0 {
		c.Windows = 30
	}
	if c.FastWindows <= 0 {
		c.FastWindows = 3
	}
	if c.FastWindows > c.Windows {
		c.FastWindows = c.Windows
	}
	if len(c.Bounds) == 0 {
		c.Bounds = obs.LatencyBounds()
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 128
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 16 {
			c.Shards = 16
		}
	}
	return c
}

// Telemetry owns the per-plane window rings and the traffic profiler.
type Telemetry struct {
	cfg    Config
	planes []*Plane // registration order; snapshots preserve it
	prof   *Profiler
}

// New builds a Telemetry instance. Config.Now is required.
func New(cfg Config) (*Telemetry, error) {
	if cfg.Now == nil {
		return nil, errors.New("telemetry: Config.Now is required")
	}
	cfg = cfg.withDefaults()
	return &Telemetry{
		cfg:  cfg,
		prof: newProfiler(cfg.Shards, cfg.MaxModels),
	}, nil
}

// Plane registers (or returns the previously registered) traffic plane
// with the given name. The SLO of an existing plane is not changed.
func (t *Telemetry) Plane(name string, slo SLO) *Plane {
	for _, p := range t.planes {
		if p.name == name {
			return p
		}
	}
	p := &Plane{
		name: name,
		slo:  slo.withDefaults(),
		ring: newRing(t.cfg.Window, t.cfg.Windows, t.cfg.Bounds),
		fast: t.cfg.FastWindows,
	}
	t.planes = append(t.planes, p)
	return p
}

// Profiler returns the traffic profiler.
func (t *Telemetry) Profiler() *Profiler { return t.prof }

// Now returns the configured clock's current time.
func (t *Telemetry) Now() time.Time { return t.cfg.Now() }

// Plane is one traffic plane (e.g. the unary or streaming estimate path)
// with its own window ring and SLO.
type Plane struct {
	name string
	slo  SLO
	ring *ring
	fast int
}

// Name returns the plane's registered name.
func (p *Plane) Name() string { return p.name }

// Observe records one request: its latency in seconds and whether it
// failed server-side. A request is "bad" (burns error budget) when it
// errored or overran the SLO latency budget.
func (p *Plane) Observe(now time.Time, seconds float64, serverErr bool) {
	bad := serverErr || seconds > p.slo.LatencyBudget
	p.ring.observe(now, seconds, bad)
}

// Snapshot summarizes the plane as of now.
func (p *Plane) Snapshot(now time.Time) PlaneSnapshot {
	slowCounts, slowTotal, slowBad := p.ring.merge(now, p.ring.windows)
	_, fastTotal, fastBad := p.ring.merge(now, p.fast)
	s := PlaneSnapshot{
		Plane:    p.name,
		Requests: p.ring.requests.Load(),
		Bad:      p.ring.badTotal.Load(),
		QPS:      p.ring.qps(now, p.fast),
		P50:      obs.BucketQuantile(p.ring.bounds, slowCounts, 0.50),
		P99:      obs.BucketQuantile(p.ring.bounds, slowCounts, 0.99),
		P999:     obs.BucketQuantile(p.ring.bounds, slowCounts, 0.999),
		BurnFast: burnRate(fastBad, fastTotal, p.slo.Objective),
		BurnSlow: burnRate(slowBad, slowTotal, p.slo.Objective),
		SLO: SLOSnapshot{
			LatencyBudget: p.slo.LatencyBudget,
			Objective:     p.slo.Objective,
			BreachBurn:    p.slo.BreachBurn,
		},
	}
	s.Breached = fastTotal > 0 &&
		s.BurnFast >= p.slo.BreachBurn && s.BurnSlow >= p.slo.BreachBurn
	return s
}

// burnRate is the SRE burn rate: the fraction of requests that burned
// error budget, normalized by the budget fraction the SLO allows. A burn
// of 1 exhausts the budget exactly at the end of the SLO period; >1 burns
// faster.
func burnRate(bad, total uint64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - objective)
}

// Snapshot captures every plane and the profiler as of Config.Now().
func (t *Telemetry) Snapshot() Snapshot {
	now := t.cfg.Now()
	s := Snapshot{
		WindowSeconds: t.cfg.Window.Seconds(),
		Windows:       t.cfg.Windows,
		Planes:        make([]PlaneSnapshot, 0, len(t.planes)),
		Models:        t.prof.SnapshotModels(),
		DroppedModels: t.prof.dropped.Load(),
	}
	for _, p := range t.planes {
		s.Planes = append(s.Planes, p.Snapshot(now))
	}
	return s
}

// Snapshot is the JSON shape served by GET /v1/telemetry.
type Snapshot struct {
	WindowSeconds float64         `json:"window_seconds"`
	Windows       int             `json:"windows"`
	Planes        []PlaneSnapshot `json:"planes"`
	Models        []ModelSnapshot `json:"models"`
	DroppedModels uint64          `json:"dropped_models"`
}

// PlaneSnapshot is the windowed view of one traffic plane. Quantiles and
// burn rates cover the ring span; QPS covers the trailing fast span so it
// tracks load changes quickly.
type PlaneSnapshot struct {
	Plane    string      `json:"plane"`
	Requests uint64      `json:"requests"` // cumulative since start
	Bad      uint64      `json:"bad"`      // cumulative SLO violations
	QPS      float64     `json:"qps"`
	P50      float64     `json:"p50_s"`
	P99      float64     `json:"p99_s"`
	P999     float64     `json:"p999_s"`
	BurnFast float64     `json:"burn_fast"`
	BurnSlow float64     `json:"burn_slow"`
	Breached bool        `json:"breached"`
	SLO      SLOSnapshot `json:"slo"`
}

// SLOSnapshot echoes the plane's SLO configuration.
type SLOSnapshot struct {
	LatencyBudget float64 `json:"latency_budget_s"`
	Objective     float64 `json:"objective"`
	BreachBurn    float64 `json:"breach_burn"`
}

// ModelSnapshot is the profiler's view of one model's traffic.
type ModelSnapshot struct {
	Key        string   `json:"key"` // module/w<width>/s<seed>
	Module     string   `json:"module"`
	Width      int      `json:"width"`
	Seed       int64    `json:"seed"`
	Classes    int      `json:"classes"` // Hd classes 0..Classes-1
	Requests   uint64   `json:"requests"`
	Estimates  uint64   `json:"estimates"`
	AvgLatency float64  `json:"avg_latency_s"` // mean per-request estimate latency
	HdHits     []uint64 `json:"hd_hits"`       // per-class estimate counts
}

// sortModels orders model snapshots by key for deterministic output.
func sortModels(ms []ModelSnapshot) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key < ms[j].Key })
}
