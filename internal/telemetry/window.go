package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// ring is a rotating ring of fixed-duration windows, each holding
// obs.Histogram-style bucket counts plus request/bad totals. Windows are
// keyed by epoch — the absolute window index now/width — so a slot is
// reusable the moment traffic reaches it in a later revolution, with no
// background rotation goroutine and no locks.
//
// Rotation is cooperative: the first observer to reach a stale slot wins a
// CAS on the epoch and zeroes the slot. An observer racing the reset can
// land a count in a partially cleared slot; the slop is bounded by the few
// in-flight observations at one window boundary per revolution, which is
// noise against a window's worth of traffic, and the totals below stay
// exact because they are tracked cumulatively outside the ring.
type ring struct {
	width   int64 // window width in nanoseconds
	windows int
	bounds  []float64 // sorted bucket upper bounds, seconds
	slots   []slot

	requests atomic.Uint64 // cumulative, exact
	badTotal atomic.Uint64 // cumulative, exact
}

type slot struct {
	epoch  atomic.Int64 // absolute window index; negative = never used
	counts []atomic.Uint64
	count  atomic.Uint64
	bad    atomic.Uint64
}

func newRing(width time.Duration, windows int, bounds []float64) *ring {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	r := &ring{width: int64(width), windows: windows, bounds: bs, slots: make([]slot, windows)}
	for i := range r.slots {
		r.slots[i].epoch.Store(-1)
		r.slots[i].counts = make([]atomic.Uint64, len(bs)+1)
	}
	return r
}

func (r *ring) epochAt(now time.Time) int64 { return now.UnixNano() / r.width }

// slotFor returns the slot for epoch, resetting it first if it still holds
// a previous revolution's data.
func (r *ring) slotFor(epoch int64) *slot {
	s := &r.slots[int(epoch%int64(r.windows))]
	if old := s.epoch.Load(); old != epoch && s.epoch.CompareAndSwap(old, epoch) {
		for i := range s.counts {
			s.counts[i].Store(0)
		}
		s.count.Store(0)
		s.bad.Store(0)
	}
	return s
}

func (r *ring) observe(now time.Time, seconds float64, bad bool) {
	s := r.slotFor(r.epochAt(now))
	idx := sort.SearchFloat64s(r.bounds, seconds)
	s.counts[idx].Add(1)
	s.count.Add(1)
	r.requests.Add(1)
	if bad {
		s.bad.Add(1)
		r.badTotal.Add(1)
	}
}

// merge sums the bucket counts, totals and bad counts of the span trailing
// windows ending at now's window (inclusive). Slots whose epoch falls
// outside the span — earlier revolutions or the never-used marker — are
// skipped.
func (r *ring) merge(now time.Time, span int) (counts []uint64, total, bad uint64) {
	if span > r.windows {
		span = r.windows
	}
	cur := r.epochAt(now)
	counts = make([]uint64, len(r.bounds)+1)
	for i := range r.slots {
		s := &r.slots[i]
		e := s.epoch.Load()
		if e < 0 || e > cur || e <= cur-int64(span) {
			continue
		}
		for j := range counts {
			counts[j] += s.counts[j].Load()
		}
		total += s.count.Load()
		bad += s.bad.Load()
	}
	return counts, total, bad
}

// qps estimates the current request rate from the trailing span completed
// windows (the current, partial window would bias the rate low). Before
// the first window completes it falls back to the current window's count
// over the elapsed fraction of that window.
func (r *ring) qps(now time.Time, span int) float64 {
	if span > r.windows-1 {
		span = r.windows - 1
	}
	cur := r.epochAt(now)
	var total uint64
	var used int
	for i := range r.slots {
		s := &r.slots[i]
		e := s.epoch.Load()
		if e >= cur || e < 0 || e <= cur-int64(span)-1 {
			continue
		}
		total += s.count.Load()
		used++
	}
	if used > 0 {
		return float64(total) / (float64(used) * time.Duration(r.width).Seconds())
	}
	// Startup: only the current partial window has data.
	s := &r.slots[int(cur%int64(r.windows))]
	if s.epoch.Load() != cur {
		return 0
	}
	elapsed := time.Duration(now.UnixNano() - cur*r.width).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.count.Load()) / elapsed
}
