package telemetry

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// clockAt builds a Config.Now returning a fixed, settable time.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock(t time.Time) *clock { return &clock{t: t} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTelemetry(t *testing.T, cfg Config) (*Telemetry, *clock) {
	t.Helper()
	ck := newClock(time.Unix(1_700_000_000, 0))
	if cfg.Now == nil {
		cfg.Now = ck.now
	}
	tel, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tel, ck
}

func TestNewRequiresClock(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New must reject a nil Config.Now")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Now: func() time.Time { return time.Unix(0, 0) }}.withDefaults()
	if cfg.Window != 10*time.Second || cfg.Windows != 30 || cfg.FastWindows != 3 {
		t.Fatalf("window defaults wrong: %+v", cfg)
	}
	if len(cfg.Bounds) == 0 || cfg.MaxModels != 128 || cfg.Shards < 1 {
		t.Fatalf("bounds/models/shards defaults wrong: %+v", cfg)
	}
	// FastWindows clamps to Windows.
	cfg = Config{Now: cfg.Now, Windows: 2, FastWindows: 9}.withDefaults()
	if cfg.FastWindows != 2 {
		t.Fatalf("FastWindows = %d, want clamp to 2", cfg.FastWindows)
	}
}

func TestPlaneRegistrationDedup(t *testing.T) {
	tel, _ := newTestTelemetry(t, Config{})
	a := tel.Plane("unary", SLO{LatencyBudget: 0.01})
	b := tel.Plane("unary", SLO{LatencyBudget: 99})
	if a != b {
		t.Fatal("re-registering a plane name must return the existing plane")
	}
	if a.Name() != "unary" {
		t.Fatalf("name = %q", a.Name())
	}
	if got := a.slo.Objective; got != 0.999 {
		t.Fatalf("default objective = %v, want 0.999", got)
	}
	if got := a.slo.BreachBurn; got != 2 {
		t.Fatalf("default breach burn = %v, want 2", got)
	}
	if tel.Now().IsZero() {
		t.Fatal("Now() must return the injected clock's time")
	}
}

func TestPlaneQuantilesAndBurn(t *testing.T) {
	tel, ck := newTestTelemetry(t, Config{
		Window:  time.Second,
		Windows: 10,
		Bounds:  []float64{0.001, 0.01, 0.1},
	})
	p := tel.Plane("unary", SLO{LatencyBudget: 0.01, Objective: 0.9, BreachBurn: 2})

	for i := 0; i < 10; i++ {
		p.Observe(ck.now(), 0.005, false) // good
		p.Observe(ck.now(), 0.05, false)  // bad: overruns the budget
	}
	s := p.Snapshot(ck.now())
	if s.Requests != 20 || s.Bad != 10 {
		t.Fatalf("requests=%d bad=%d, want 20/10", s.Requests, s.Bad)
	}
	if math.Abs(s.P50-0.01) > 1e-12 {
		t.Fatalf("p50 = %v, want 0.01", s.P50)
	}
	if s.P99 <= 0.01 || s.P99 > 0.1 {
		t.Fatalf("p99 = %v, want in (0.01, 0.1]", s.P99)
	}
	// badFrac 0.5 against a 0.1 error budget: burn 5 on both spans.
	if math.Abs(s.BurnFast-5) > 1e-9 || math.Abs(s.BurnSlow-5) > 1e-9 {
		t.Fatalf("burn fast=%v slow=%v, want 5/5", s.BurnFast, s.BurnSlow)
	}
	if !s.Breached {
		t.Fatal("burn 5 >= threshold 2 on both spans must breach")
	}

	// A server error burns budget even when fast.
	p.Observe(ck.now(), 0.0001, true)
	if got := p.Snapshot(ck.now()).Bad; got != 11 {
		t.Fatalf("bad after server error = %d, want 11", got)
	}
}

func TestPlaneNoTrafficNoBreach(t *testing.T) {
	tel, ck := newTestTelemetry(t, Config{Window: time.Second, Windows: 4})
	p := tel.Plane("stream", SLO{LatencyBudget: 0.001})
	s := p.Snapshot(ck.now())
	if s.Breached || s.BurnFast != 0 || s.BurnSlow != 0 || s.QPS != 0 {
		t.Fatalf("idle plane must be quiet: %+v", s)
	}
}

// TestWindowExpiry drives the ring through a full revolution: data older
// than the ring span must drop out of the windowed view while the
// cumulative totals keep it.
func TestWindowExpiry(t *testing.T) {
	tel, ck := newTestTelemetry(t, Config{Window: time.Second, Windows: 4, FastWindows: 2})
	p := tel.Plane("unary", SLO{LatencyBudget: 0.01})
	p.Observe(ck.now(), 0.5, false) // bad, lands in the current window

	if _, total, bad := p.ring.merge(ck.now(), p.ring.windows); total != 1 || bad != 1 {
		t.Fatalf("fresh observation missing: total=%d bad=%d", total, bad)
	}

	// A full revolution later the slot is reused and reset.
	ck.advance(5 * time.Second)
	p.Observe(ck.now(), 0.001, false)
	_, total, bad := p.ring.merge(ck.now(), p.ring.windows)
	if total != 1 || bad != 0 {
		t.Fatalf("expired window leaked into the view: total=%d bad=%d", total, bad)
	}
	s := p.Snapshot(ck.now())
	if s.Requests != 2 || s.Bad != 1 {
		t.Fatalf("cumulative totals must survive expiry: %+v", s)
	}
}

func TestQPS(t *testing.T) {
	tel, ck := newTestTelemetry(t, Config{Window: time.Second, Windows: 10, FastWindows: 3})
	p := tel.Plane("unary", SLO{LatencyBudget: 1})

	// Startup: only the current, half-elapsed window has traffic.
	ck.advance(500 * time.Millisecond)
	for i := 0; i < 50; i++ {
		p.Observe(ck.now(), 0.001, false)
	}
	if got := p.ring.qps(ck.now(), 3); math.Abs(got-100) > 1 {
		t.Fatalf("startup qps = %v, want ~100", got)
	}

	// Steady state: a completed window with 100 requests.
	ck.advance(time.Second)
	for i := 0; i < 100; i++ {
		p.Observe(ck.now(), 0.001, false)
	}
	ck.advance(time.Second)
	if got := p.ring.qps(ck.now(), 3); math.Abs(got-75) > 1 {
		// Two completed active windows: 50 + 100 over 2s.
		t.Fatalf("steady qps = %v, want ~75", got)
	}
}

func TestProfilerBasics(t *testing.T) {
	p := newProfiler(4, 8)
	key := Key{Module: "csa-multiplier", Width: 8, Seed: 1}
	if got, want := key.String(), "csa-multiplier/w8/s1"; got != want {
		t.Fatalf("key string = %q, want %q", got, want)
	}

	mp := p.Model(key, 17)
	if mp == nil {
		t.Fatal("first registration returned nil")
	}
	if again := p.Model(key, 17); again != mp {
		t.Fatal("hit path must return the registered model")
	}

	mp.RecordClass(0, 3)
	mp.RecordClass(1, 3)
	mp.RecordClass(2, 16)
	mp.RecordClass(3, -1)  // ignored
	mp.RecordClass(0, 999) // clamped into the top class
	mp.RecordRequest(0, 3, 0.002)
	mp.RecordRequest(1, 0, 0) // no estimates, no latency sample

	s := mp.Snapshot()
	if s.Requests != 2 || s.Estimates != 3 {
		t.Fatalf("requests=%d estimates=%d, want 2/3", s.Requests, s.Estimates)
	}
	if s.HdHits[3] != 2 || s.HdHits[16] != 2 {
		// class 16 holds its own hit plus the clamped out-of-range one.
		t.Fatalf("hd hits = %v", s.HdHits)
	}
	if math.Abs(s.AvgLatency-0.002) > 1e-9 {
		t.Fatalf("avg latency = %v, want 0.002", s.AvgLatency)
	}
	if s.Classes != 17 || len(s.HdHits) != 17 {
		t.Fatalf("classes = %d len(hits) = %d", s.Classes, len(s.HdHits))
	}

	// Nil model (over cap) is safe to record into.
	var nilProf *ModelProf
	nilProf.RecordClass(0, 1)
	nilProf.RecordRequest(0, 1, 0.001)
}

func TestProfilerCapAndOrder(t *testing.T) {
	p := newProfiler(2, 2)
	a := p.Model(Key{Module: "zzz", Width: 8, Seed: 1}, 4)
	b := p.Model(Key{Module: "aaa", Width: 8, Seed: 1}, 4)
	if a == nil || b == nil {
		t.Fatal("registrations under the cap must succeed")
	}
	if over := p.Model(Key{Module: "mmm", Width: 8, Seed: 1}, 4); over != nil {
		t.Fatal("registration over the cap must return nil")
	}
	if p.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", p.Dropped())
	}
	snaps := p.SnapshotModels()
	if len(snaps) != 2 || snaps[0].Module != "aaa" || snaps[1].Module != "zzz" {
		t.Fatalf("snapshots not key-sorted: %+v", snaps)
	}
	// Class counts clamp to the representable range.
	if mp := p.Model(Key{Module: "w", Width: 1, Seed: 1}, 0); mp != nil {
		t.Fatal("cap must hold for clamped registrations too")
	}
}

func TestProfilerClassClamp(t *testing.T) {
	p := newProfiler(1, 4)
	lo := p.Model(Key{Module: "lo"}, 0)
	if lo.classes != 1 {
		t.Fatalf("classes = %d, want clamp to 1", lo.classes)
	}
	hi := p.Model(Key{Module: "hi"}, MaxClasses+10)
	if hi.classes != MaxClasses {
		t.Fatalf("classes = %d, want clamp to %d", hi.classes, MaxClasses)
	}
}

func TestTelemetrySnapshot(t *testing.T) {
	tel, ck := newTestTelemetry(t, Config{Window: time.Second, Windows: 4})
	unary := tel.Plane("unary", SLO{LatencyBudget: 0.025})
	tel.Plane("stream", SLO{LatencyBudget: 0.08})
	unary.Observe(ck.now(), 0.001, false)

	mp := tel.Profiler().Model(Key{Module: "ripple-adder", Width: 8, Seed: 1}, 17)
	mp.RecordClass(0, 5)
	mp.RecordRequest(0, 1, 0.0003)

	s := tel.Snapshot()
	if s.Windows != 4 || s.WindowSeconds != 1 {
		t.Fatalf("window config missing from snapshot: %+v", s)
	}
	if len(s.Planes) != 2 || s.Planes[0].Plane != "unary" || s.Planes[1].Plane != "stream" {
		t.Fatalf("planes = %+v", s.Planes)
	}
	if s.Planes[0].Requests != 1 {
		t.Fatalf("unary requests = %d", s.Planes[0].Requests)
	}
	if len(s.Models) != 1 || s.Models[0].HdHits[5] != 1 {
		t.Fatalf("models = %+v", s.Models)
	}
	if s.DroppedModels != 0 {
		t.Fatalf("dropped = %d", s.DroppedModels)
	}
}

// TestProfilerConcurrency hammers the sharded profiler from GOMAXPROCS
// goroutines while a snapshotter runs concurrently: no counts may be lost,
// and every intermediate snapshot must be internally consistent — counters
// monotone between snapshots, bounded by the final totals, and the
// class-sum never further from the estimate count than the number of
// writers (each writer has at most one record in flight).
func TestProfilerConcurrency(t *testing.T) {
	const iters = 20000
	writers := runtime.GOMAXPROCS(0)
	p := newProfiler(writers, 8)
	key := Key{Module: "csa-multiplier", Width: 8, Seed: 1}
	const classes = 17

	var stop atomic.Bool
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(hint uint32) {
			defer writersWG.Done()
			for i := 0; i < iters; i++ {
				mp := p.Model(key, classes)
				mp.RecordClass(hint, i%classes)
				mp.RecordRequest(hint, 1, 0.001)
			}
		}(uint32(w))
	}

	snapErr := make(chan error, 1)
	go func() {
		var prevHits, prevEst uint64
		for !stop.Load() {
			for _, s := range p.SnapshotModels() {
				var hits uint64
				for _, h := range s.HdHits {
					hits += h
				}
				if hits < prevHits || s.Estimates < prevEst {
					snapErr <- fmt.Errorf("counters went backwards: hits %d->%d estimates %d->%d",
						prevHits, hits, prevEst, s.Estimates)
					return
				}
				if diff := int64(hits) - int64(s.Estimates); diff > int64(2*writers) || diff < -int64(2*writers) {
					snapErr <- fmt.Errorf("snapshot skew %d exceeds in-flight bound %d", diff, 2*writers)
					return
				}
				prevHits, prevEst = hits, s.Estimates
			}
			runtime.Gosched()
		}
		snapErr <- nil
	}()

	writersWG.Wait()
	stop.Store(true)
	if err := <-snapErr; err != nil {
		t.Fatal(err)
	}

	final := p.Model(key, classes).Snapshot()
	want := uint64(writers) * iters
	if final.Requests != want || final.Estimates != want {
		t.Fatalf("lost counts: requests=%d estimates=%d, want %d", final.Requests, final.Estimates, want)
	}
	var hits uint64
	for _, h := range final.HdHits {
		hits += h
	}
	if hits != want {
		t.Fatalf("lost class hits: %d, want %d", hits, want)
	}
}

// TestProfilerConcurrentRegistration races registrations of distinct keys
// against the cap from many goroutines.
func TestProfilerConcurrentRegistration(t *testing.T) {
	const cap = 16
	p := newProfiler(2, cap)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				p.Model(Key{Module: "m", Width: i % 32, Seed: seed}, 8)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := len(p.SnapshotModels()); got != cap {
		t.Fatalf("registered %d models, want cap %d", got, cap)
	}
	if p.Dropped() == 0 {
		t.Fatal("over-cap registrations must be counted")
	}
}
