package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MaxClasses bounds the per-model Hd-class counters: Hd classes 0..64
// cover every model the build plane accepts (input vectors are at most 64
// bits wide).
const MaxClasses = 65

// Key identifies one served model, mirroring the serving layer's build
// key. The Module string must be interned by the caller when the lookup
// sits on an allocation-sensitive path: the fast path's module interner
// guarantees a stable string so the map probe does not allocate.
type Key struct {
	Module string
	Width  int
	Seed   int64
}

// String renders the key in the build-plane's canonical
// module/w<width>/s<seed> form.
func (k Key) String() string { return fmt.Sprintf("%s/w%d/s%d", k.Module, k.Width, k.Seed) }

// Profiler records per-model × per-Hd-class traffic with lock-free,
// allocation-free hot-path recording. The model set is an RCU snapshot: a
// read-only map swapped under a mutex on registration (rare), probed with
// a single atomic load per lookup (always). Counters are sharded per
// model so concurrent workers do not contend on one cache line.
type Profiler struct {
	shards  int
	max     int
	mu      sync.Mutex // guards registration (copy + swap of set)
	set     atomic.Pointer[profSet]
	dropped atomic.Uint64 // registrations refused by the MaxModels cap
}

// profSet is one immutable model-set snapshot. list preserves
// registration order so snapshot code never ranges over the map.
type profSet struct {
	byKey map[Key]*ModelProf
	list  []*ModelProf
}

// ModelProf holds the sharded counters of one model.
type ModelProf struct {
	key     Key
	classes int
	shards  []profShard
}

// profShard is one shard's counters. Latency is accumulated in integer
// nanoseconds so recording is a plain atomic add rather than a CAS loop.
type profShard struct {
	classes   [MaxClasses]atomic.Uint64
	requests  atomic.Uint64
	estimates atomic.Uint64
	latNanos  atomic.Uint64
	latCount  atomic.Uint64
}

func newProfiler(shards, maxModels int) *Profiler {
	p := &Profiler{shards: shards, max: maxModels}
	p.set.Store(&profSet{byKey: map[Key]*ModelProf{}})
	return p
}

// Model returns the counters for key, registering the model on first
// sight. The hit path is one atomic load plus a map probe and never
// allocates. Returns nil (safe to record into) when the MaxModels cap is
// reached.
func (p *Profiler) Model(key Key, classes int) *ModelProf {
	if mp, ok := p.set.Load().byKey[key]; ok {
		return mp
	}
	return p.register(key, classes)
}

func (p *Profiler) register(key Key, classes int) *ModelProf {
	if classes < 1 {
		classes = 1
	} else if classes > MaxClasses {
		classes = MaxClasses
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.set.Load()
	if mp, ok := old.byKey[key]; ok { // lost a registration race
		return mp
	}
	if len(old.list) >= p.max {
		p.dropped.Add(1)
		return nil
	}
	mp := &ModelProf{key: key, classes: classes, shards: make([]profShard, p.shards)}
	next := &profSet{
		byKey: make(map[Key]*ModelProf, len(old.list)+1),
		list:  make([]*ModelProf, len(old.list), len(old.list)+1),
	}
	copy(next.list, old.list)
	next.list = append(next.list, mp)
	for _, m := range next.list {
		next.byKey[m.key] = m
	}
	p.set.Store(next)
	return mp
}

// Dropped returns the number of model registrations refused by the cap.
func (p *Profiler) Dropped() uint64 { return p.dropped.Load() }

// RecordClass counts one estimate landing in Hd class hd. hint selects
// the shard; callers pass a per-worker value so concurrent recorders
// spread across shards. Nil-safe and allocation-free.
func (m *ModelProf) RecordClass(hint uint32, hd int) {
	if m == nil || hd < 0 {
		return
	}
	if hd >= MaxClasses {
		hd = MaxClasses - 1
	}
	m.shards[int(hint)%len(m.shards)].classes[hd].Add(1)
}

// RecordRequest counts one request against the model: how many estimates
// it carried and how long the estimate computation took. Nil-safe and
// allocation-free.
func (m *ModelProf) RecordRequest(hint uint32, estimates int, latSeconds float64) {
	if m == nil {
		return
	}
	sh := &m.shards[int(hint)%len(m.shards)]
	sh.requests.Add(1)
	if estimates > 0 {
		sh.estimates.Add(uint64(estimates))
	}
	if latSeconds > 0 {
		sh.latNanos.Add(uint64(latSeconds * 1e9))
		sh.latCount.Add(1)
	}
}

// Snapshot sums the model's shards.
func (m *ModelProf) Snapshot() ModelSnapshot {
	s := ModelSnapshot{
		Key:     m.key.String(),
		Module:  m.key.Module,
		Width:   m.key.Width,
		Seed:    m.key.Seed,
		Classes: m.classes,
		HdHits:  make([]uint64, m.classes),
	}
	var latNanos, latCount uint64
	for i := range m.shards {
		sh := &m.shards[i]
		s.Requests += sh.requests.Load()
		s.Estimates += sh.estimates.Load()
		latNanos += sh.latNanos.Load()
		latCount += sh.latCount.Load()
		for c := 0; c < m.classes; c++ {
			s.HdHits[c] += sh.classes[c].Load()
		}
		// Out-of-range Hd values are clamped into the top slot by
		// RecordClass; fold anything above the model's class count into
		// the last class so no hit is lost from the snapshot.
		for c := m.classes; c < MaxClasses; c++ {
			s.HdHits[m.classes-1] += sh.classes[c].Load()
		}
	}
	if latCount > 0 {
		s.AvgLatency = float64(latNanos) / 1e9 / float64(latCount)
	}
	return s
}

// SnapshotModels snapshots every registered model, sorted by key for
// deterministic output.
func (p *Profiler) SnapshotModels() []ModelSnapshot {
	set := p.set.Load()
	out := make([]ModelSnapshot, 0, len(set.list))
	for _, m := range set.list {
		out = append(out, m.Snapshot())
	}
	sortModels(out)
	return out
}
