// Package logic provides fixed-width binary words, two's-complement
// encoding, and the Hamming-distance machinery the Hd power macro-model is
// built on.
//
// A Word is a little-endian bit vector: bit 0 is the LSB. Words are value
// types backed by uint64 limbs so that modules with more than 64 inputs
// (e.g. two 16-bit multiplier ports plus carry inputs) stay cheap to copy
// and compare.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordLimbBits is the number of bits stored per limb.
const WordLimbBits = 64

// Word is a fixed-width bit vector. The zero value is a zero-width word.
type Word struct {
	width int
	limbs []uint64
}

// NewWord returns an all-zero word of the given width.
// It panics if width is negative.
func NewWord(width int) Word {
	if width < 0 {
		panic(fmt.Sprintf("logic: negative word width %d", width))
	}
	n := (width + WordLimbBits - 1) / WordLimbBits
	return Word{width: width, limbs: make([]uint64, n)}
}

// FromUint returns a word of the given width holding the low `width` bits
// of v.
func FromUint(v uint64, width int) Word {
	w := NewWord(width)
	if width == 0 {
		return w
	}
	if width < WordLimbBits {
		v &= (1 << uint(width)) - 1
	}
	if len(w.limbs) > 0 {
		w.limbs[0] = v
	}
	return w
}

// FromInt encodes v as a two's-complement word of the given width.
// Values outside the representable range wrap modulo 2^width.
func FromInt(v int64, width int) Word {
	return FromUint(uint64(v), width)
}

// FromBits builds a word from a little-endian bit slice (b[0] is the LSB).
func FromBits(b []bool) Word {
	w := NewWord(len(b))
	for i, bit := range b {
		if bit {
			w.Set(i, true)
		}
	}
	return w
}

// ParseWord parses a binary string written MSB-first, e.g. "1010" is the
// value 10 with width 4. Underscores are ignored as digit separators.
func ParseWord(s string) (Word, error) {
	s = strings.ReplaceAll(s, "_", "")
	w := NewWord(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			w.Set(len(s)-1-i, true)
		default:
			return Word{}, fmt.Errorf("logic: invalid binary digit %q in %q", c, s)
		}
	}
	return w, nil
}

// MustParseWord is ParseWord that panics on error; for tests and constants.
func MustParseWord(s string) Word {
	w, err := ParseWord(s)
	if err != nil {
		panic(err)
	}
	return w
}

// Width returns the number of bits in the word.
func (w Word) Width() int { return w.width }

// Bit reports whether bit i is set. It panics if i is out of range.
func (w Word) Bit(i int) bool {
	w.check(i)
	return w.limbs[i/WordLimbBits]>>(uint(i)%WordLimbBits)&1 == 1
}

// Set sets bit i to v. It panics if i is out of range.
func (w *Word) Set(i int, v bool) {
	w.check(i)
	mask := uint64(1) << (uint(i) % WordLimbBits)
	if v {
		w.limbs[i/WordLimbBits] |= mask
	} else {
		w.limbs[i/WordLimbBits] &^= mask
	}
}

func (w Word) check(i int) {
	if i < 0 || i >= w.width {
		panic(fmt.Sprintf("logic: bit index %d out of range for width %d", i, w.width))
	}
}

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	c := Word{width: w.width, limbs: make([]uint64, len(w.limbs))}
	copy(c.limbs, w.limbs)
	return c
}

// Uint returns the word interpreted as an unsigned integer.
// It panics if the width exceeds 64 bits.
func (w Word) Uint() uint64 {
	if w.width > WordLimbBits {
		panic(fmt.Sprintf("logic: Uint on %d-bit word", w.width))
	}
	if len(w.limbs) == 0 {
		return 0
	}
	return w.limbs[0] & w.topMask()
}

// Int returns the word interpreted as a two's-complement signed integer.
// It panics if the width exceeds 64 bits or is zero.
func (w Word) Int() int64 {
	if w.width == 0 {
		panic("logic: Int on zero-width word")
	}
	v := w.Uint()
	if w.Bit(w.width - 1) { // sign extend
		if w.width < WordLimbBits {
			v |= ^uint64(0) << uint(w.width)
		}
	}
	return int64(v)
}

func (w Word) topMask() uint64 {
	if w.width == 0 {
		return 0
	}
	r := w.width % WordLimbBits
	if r == 0 {
		return ^uint64(0)
	}
	return (1 << uint(r)) - 1
}

// Equal reports whether two words have identical width and bits.
func (w Word) Equal(o Word) bool {
	if w.width != o.width {
		return false
	}
	for i := range w.limbs {
		if w.masked(i) != o.masked(i) {
			return false
		}
	}
	return true
}

func (w Word) masked(limb int) uint64 {
	v := w.limbs[limb]
	if limb == len(w.limbs)-1 {
		v &= w.topMask()
	}
	return v
}

// PopCount returns the number of set bits.
func (w Word) PopCount() int {
	n := 0
	for i := range w.limbs {
		n += bits.OnesCount64(w.masked(i))
	}
	return n
}

// String renders the word MSB-first, the conventional way to read a bus.
func (w Word) String() string {
	var b strings.Builder
	for i := w.width - 1; i >= 0; i-- {
		if w.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Bits returns the word as a little-endian bool slice.
func (w Word) Bits() []bool {
	out := make([]bool, w.width)
	for i := range out {
		out[i] = w.Bit(i)
	}
	return out
}

// Concat returns the concatenation of w (low part) and hi (high part):
// the result has width w.Width()+hi.Width(), with w occupying the LSBs.
func (w Word) Concat(hi Word) Word {
	out := NewWord(w.width + hi.width)
	for i := 0; i < w.width; i++ {
		out.Set(i, w.Bit(i))
	}
	for i := 0; i < hi.width; i++ {
		out.Set(w.width+i, hi.Bit(i))
	}
	return out
}

// Slice returns bits [lo, hi) as a new word of width hi-lo.
func (w Word) Slice(lo, hi int) Word {
	if lo < 0 || hi > w.width || lo > hi {
		panic(fmt.Sprintf("logic: bad slice [%d,%d) of %d-bit word", lo, hi, w.width))
	}
	out := NewWord(hi - lo)
	for i := lo; i < hi; i++ {
		out.Set(i-lo, w.Bit(i))
	}
	return out
}

// Hd returns the Hamming distance between two equal-width words: the
// number of bit positions in which they differ (paper eq. 1).
// It panics on width mismatch.
func Hd(u, v Word) int {
	if u.width != v.width {
		panic(fmt.Sprintf("logic: Hd width mismatch %d vs %d", u.width, v.width))
	}
	d := 0
	for i := range u.limbs {
		d += bits.OnesCount64(u.masked(i) ^ v.masked(i))
	}
	return d
}

// StableZeros returns the number of bit positions that are zero in both u
// and v — the second index of the enhanced model's event classes E_{i,z}.
// It panics on width mismatch.
func StableZeros(u, v Word) int {
	if u.width != v.width {
		panic(fmt.Sprintf("logic: StableZeros width mismatch %d vs %d", u.width, v.width))
	}
	n := 0
	for i := range u.limbs {
		stable0 := ^(u.masked(i) | v.masked(i))
		if i == len(u.limbs)-1 {
			stable0 &= u.topMask()
		}
		n += bits.OnesCount64(stable0)
	}
	return n
}

// StableOnes returns the number of bit positions that are one in both u
// and v.
func StableOnes(u, v Word) int {
	if u.width != v.width {
		panic(fmt.Sprintf("logic: StableOnes width mismatch %d vs %d", u.width, v.width))
	}
	n := 0
	for i := range u.limbs {
		n += bits.OnesCount64(u.masked(i) & v.masked(i))
	}
	return n
}
