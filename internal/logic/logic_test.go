package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWordZero(t *testing.T) {
	for _, width := range []int{0, 1, 7, 63, 64, 65, 128, 200} {
		w := NewWord(width)
		if w.Width() != width {
			t.Errorf("NewWord(%d).Width() = %d", width, w.Width())
		}
		if w.PopCount() != 0 {
			t.Errorf("NewWord(%d) has %d set bits", width, w.PopCount())
		}
	}
}

func TestNewWordNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWord(-1) did not panic")
		}
	}()
	NewWord(-1)
}

func TestFromUintRoundTrip(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  uint64
	}{
		{0, 8, 0},
		{255, 8, 255},
		{256, 8, 0}, // wraps
		{0x1ff, 8, 0xff},
		{^uint64(0), 64, ^uint64(0)},
		{1, 1, 1},
		{2, 1, 0},
		{0xdeadbeef, 32, 0xdeadbeef},
	}
	for _, c := range cases {
		got := FromUint(c.v, c.width).Uint()
		if got != c.want {
			t.Errorf("FromUint(%#x,%d).Uint() = %#x, want %#x", c.v, c.width, got, c.want)
		}
	}
}

func TestFromIntTwosComplement(t *testing.T) {
	cases := []struct {
		v     int64
		width int
	}{
		{0, 8}, {1, 8}, {-1, 8}, {127, 8}, {-128, 8},
		{-1, 16}, {32767, 16}, {-32768, 16},
		{-5, 4}, {7, 4}, {-8, 4},
	}
	for _, c := range cases {
		w := FromInt(c.v, c.width)
		if got := w.Int(); got != c.v {
			t.Errorf("FromInt(%d,%d).Int() = %d", c.v, c.width, got)
		}
	}
}

func TestIntSignExtension(t *testing.T) {
	w := MustParseWord("1000") // -8 in 4-bit two's complement
	if got := w.Int(); got != -8 {
		t.Errorf("1000 as int = %d, want -8", got)
	}
	w = MustParseWord("1111")
	if got := w.Int(); got != -1 {
		t.Errorf("1111 as int = %d, want -1", got)
	}
	w = MustParseWord("0111")
	if got := w.Int(); got != 7 {
		t.Errorf("0111 as int = %d, want 7", got)
	}
}

func TestParseWord(t *testing.T) {
	w, err := ParseWord("1010")
	if err != nil {
		t.Fatal(err)
	}
	if w.Uint() != 10 || w.Width() != 4 {
		t.Errorf("ParseWord(1010) = %v (width %d)", w.Uint(), w.Width())
	}
	if _, err := ParseWord("10a0"); err == nil {
		t.Error("ParseWord(10a0) did not fail")
	}
	w = MustParseWord("1111_0000")
	if w.Uint() != 0xf0 || w.Width() != 8 {
		t.Errorf("underscore parse = %#x width %d", w.Uint(), w.Width())
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		width := 1 + rng.Intn(100)
		w := NewWord(width)
		for b := 0; b < width; b++ {
			w.Set(b, rng.Intn(2) == 1)
		}
		back := MustParseWord(w.String())
		if !w.Equal(back) {
			t.Fatalf("round trip failed for %s", w)
		}
	}
}

func TestSetAndBit(t *testing.T) {
	w := NewWord(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		w.Set(i, true)
		if !w.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
		w.Set(i, false)
		if w.Bit(i) {
			t.Errorf("bit %d not cleared", i)
		}
	}
}

func TestBitOutOfRangePanics(t *testing.T) {
	w := NewWord(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			w.Bit(i)
		}()
	}
}

func TestHdKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0000", "0000", 0},
		{"0000", "1111", 4},
		{"1010", "0101", 4},
		{"1010", "1011", 1},
		{"11110000", "00001111", 8},
	}
	for _, c := range cases {
		got := Hd(MustParseWord(c.a), MustParseWord(c.b))
		if got != c.want {
			t.Errorf("Hd(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHdWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hd width mismatch did not panic")
		}
	}()
	Hd(NewWord(4), NewWord(5))
}

func TestStableZerosOnes(t *testing.T) {
	u := MustParseWord("1100")
	v := MustParseWord("1010")
	// bit3: 1,1 stable one; bit2: 1,0; bit1: 0,1; bit0: 0,0 stable zero.
	if got := StableZeros(u, v); got != 1 {
		t.Errorf("StableZeros = %d, want 1", got)
	}
	if got := StableOnes(u, v); got != 1 {
		t.Errorf("StableOnes = %d, want 1", got)
	}
}

func TestConcatSlice(t *testing.T) {
	lo := MustParseWord("1010") // value 10
	hi := MustParseWord("11")   // value 3
	w := lo.Concat(hi)
	if w.Width() != 6 {
		t.Fatalf("Concat width = %d", w.Width())
	}
	if w.Uint() != 3<<4|10 {
		t.Errorf("Concat value = %#x", w.Uint())
	}
	if got := w.Slice(0, 4); !got.Equal(lo) {
		t.Errorf("Slice low = %s", got)
	}
	if got := w.Slice(4, 6); !got.Equal(hi) {
		t.Errorf("Slice high = %s", got)
	}
}

func TestSliceBadRangePanics(t *testing.T) {
	w := NewWord(8)
	for _, r := range [][2]int{{-1, 4}, {0, 9}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", r[0], r[1])
				}
			}()
			w.Slice(r[0], r[1])
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	w := FromUint(0xff, 8)
	c := w.Clone()
	c.Set(0, false)
	if !w.Bit(0) {
		t.Error("Clone shares storage with original")
	}
}

func TestFromBits(t *testing.T) {
	w := FromBits([]bool{true, false, true}) // LSB-first: value 5
	if w.Uint() != 5 || w.Width() != 3 {
		t.Errorf("FromBits = %d width %d", w.Uint(), w.Width())
	}
	bits := w.Bits()
	if len(bits) != 3 || !bits[0] || bits[1] || !bits[2] {
		t.Errorf("Bits() = %v", bits)
	}
}

// Property: Hd is a metric on equal-width words.
func TestHdMetricProperties(t *testing.T) {
	const width = 48
	mk := func(v uint64) Word { return FromUint(v, width) }

	identity := func(a uint64) bool { return Hd(mk(a), mk(a)) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	symmetry := func(a, b uint64) bool { return Hd(mk(a), mk(b)) == Hd(mk(b), mk(a)) }
	if err := quick.Check(symmetry, nil); err != nil {
		t.Error("symmetry:", err)
	}
	triangle := func(a, b, c uint64) bool {
		return Hd(mk(a), mk(c)) <= Hd(mk(a), mk(b))+Hd(mk(b), mk(c))
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error("triangle:", err)
	}
}

// Property: Hd + StableZeros + StableOnes + (bit positions where exactly
// one word is 1 but which do not differ) — in fact every non-differing bit
// is either a stable zero or a stable one, so the three quantities
// partition the word.
func TestHdStablePartition(t *testing.T) {
	const width = 64
	f := func(a, b uint64) bool {
		u, v := FromUint(a, width), FromUint(b, width)
		return Hd(u, v)+StableZeros(u, v)+StableOnes(u, v) == width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two's-complement round trip for arbitrary ints in range.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int16) bool {
		return FromInt(int64(v), 16).Int() == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PopCount(u XOR-free) — Hd(u, 0) equals PopCount(u).
func TestHdAgainstZeroIsPopCount(t *testing.T) {
	f := func(a uint64) bool {
		u := FromUint(a, 64)
		return Hd(u, NewWord(64)) == u.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualDifferentWidth(t *testing.T) {
	if FromUint(1, 4).Equal(FromUint(1, 5)) {
		t.Error("words of different widths compare equal")
	}
}

func TestWideWordHd(t *testing.T) {
	u := NewWord(128)
	v := NewWord(128)
	for i := 0; i < 128; i += 3 {
		v.Set(i, true)
	}
	if got, want := Hd(u, v), 43; got != want {
		t.Errorf("wide Hd = %d, want %d", got, want)
	}
	if got := StableZeros(u, v); got != 128-43 {
		t.Errorf("wide StableZeros = %d, want %d", got, 128-43)
	}
}

func BenchmarkHd64(b *testing.B) {
	u := FromUint(0xdeadbeefcafef00d, 64)
	v := FromUint(0x123456789abcdef0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hd(u, v)
	}
}
