package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLeastSquaresExactSquare(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	x, err := LeastSquares(a, []float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestLeastSquaresOverdeterminedLine(t *testing.T) {
	// Fit y = 2m + 1 exactly through 5 points.
	var rows [][]float64
	var b []float64
	for m := 1; m <= 5; m++ {
		rows = append(rows, []float64{float64(m), 1})
		b = append(b, 2*float64(m)+1)
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-10) || !almostEq(x[1], 1, 1e-10) {
		t.Errorf("line fit = %v", x)
	}
}

func TestLeastSquaresQuadratic(t *testing.T) {
	// Fit p(m) = 0.5 m^2 + 3m + 7 through widths 4..16 step 2.
	var rows [][]float64
	var b []float64
	for m := 4; m <= 16; m += 2 {
		fm := float64(m)
		rows = append(rows, []float64{fm * fm, fm, 1})
		b = append(b, 0.5*fm*fm+3*fm+7)
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 3, 7}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-8) {
			t.Errorf("coef %d = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var rows [][]float64
	var b []float64
	for i := 0; i < 200; i++ {
		m := float64(1 + rng.Intn(30))
		rows = append(rows, []float64{m, 1})
		b = append(b, 5*m-2+rng.NormFloat64()*0.1)
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 5, 0.05) || !almostEq(x[1], -2, 0.5) {
		t.Errorf("noisy fit = %v", x)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient system accepted")
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Fatal("underdetermined system accepted")
	}
}

func TestLeastSquaresRhsMismatch(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rhs length mismatch accepted")
	}
}

func TestResidualZeroForExactFit(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 1}, {3, 1}})
	x := []float64{2, 1}
	b := a.MulVec(x)
	if r := Residual(a, x, b); r > 1e-12 {
		t.Errorf("residual = %v", r)
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	a := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong length accepted")
		}
	}()
	a.MulVec([]float64{1})
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestFromRowsValidation(t *testing.T) {
	for _, rows := range [][][]float64{nil, {{}}, {{1, 2}, {3}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromRows(%v) accepted", rows)
				}
			}()
			FromRows(rows)
		}()
	}
}

// Property: the LS solution's residual is never worse than that of small
// perturbations of it (first-order optimality probe).
func TestLeastSquaresOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := make([][]float64, 8)
		b := make([]float64, 8)
		for i := range rows {
			rows[i] = []float64{r.NormFloat64(), r.NormFloat64(), 1}
			b[i] = r.NormFloat64() * 5
		}
		a := FromRows(rows)
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // skip degenerate random instances
		}
		base := Residual(a, x, b)
		for trial := 0; trial < 10; trial++ {
			xp := append([]float64(nil), x...)
			for j := range xp {
				xp[j] += rng.NormFloat64() * 0.01
			}
			if Residual(a, xp, b) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
