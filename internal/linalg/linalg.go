// Package linalg provides the small dense linear algebra kernel needed by
// the bit-width regression of Section 5: matrices, Householder QR
// factorization, and least-squares solving. It is deliberately minimal —
// design matrices here have a handful of rows (prototype widths) and at
// most three columns (complexity terms).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: row %d has %d entries, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m · x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dim mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

// LeastSquares solves min_x ||A·x − b||₂ via Householder QR. It requires
// Rows >= Cols and returns an error if A is (numerically) rank deficient.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs has %d entries, want %d", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	r := a.Clone()
	y := append([]float64(nil), b...)

	// Householder QR: transform R in place, apply reflections to y.
	for k := 0; k < r.Cols; k++ {
		// Norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < r.Rows; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("linalg: rank deficient at column %d", k)
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		// v = x − alpha·e_k (stored in column k scratch copy)
		v := make([]float64, r.Rows-k)
		v[0] = r.At(k, k) - alpha
		for i := k + 1; i < r.Rows; i++ {
			v[i-k] = r.At(i, k)
		}
		var vv float64
		for _, t := range v {
			vv += t * t
		}
		if vv == 0 {
			continue // column already in triangular form
		}
		// Apply H = I − 2vvᵀ/vᵀv to the remaining columns of R and to y.
		for j := k; j < r.Cols; j++ {
			var dot float64
			for i := k; i < r.Rows; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vv
			for i := k; i < r.Rows; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i-k])
			}
		}
		var dot float64
		for i := k; i < r.Rows; i++ {
			dot += v[i-k] * y[i]
		}
		f := 2 * dot / vv
		for i := k; i < r.Rows; i++ {
			y[i] -= f * v[i-k]
		}
	}
	// Back substitution on the upper triangle.
	x := make([]float64, r.Cols)
	for i := r.Cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < r.Cols; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, fmt.Errorf("linalg: singular triangular factor at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// Residual returns ||A·x − b||₂.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	var s float64
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
