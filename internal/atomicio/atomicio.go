// Package atomicio makes on-disk state crash-safe. Every durable artifact
// of the pipeline — characterized models, width regressions, run
// manifests, characterization checkpoints — goes through the same write
// discipline:
//
//  1. write to a temp file in the destination directory,
//  2. append a SHA-256 checksum trailer over the payload,
//  3. fsync the file, rename it over the destination, fsync the directory.
//
// A crash at any point leaves either the old file or the new file, never
// a torn mixture; a torn file that arrives anyway (filesystem bugs, bad
// disks, scp-ed partial copies) is caught by the checksum on load,
// quarantined to <path>.corrupt, and reported as a typed *CorruptError so
// callers can degrade instead of parsing garbage as a model.
//
// The trailer is one trailing line:
//
//	#hdpower-sha256:<64 hex digits>:<payload byte length>
//
// ReadFile strips and verifies it. Files written before the trailer
// existed load with ErrNoChecksum alongside their payload, letting
// callers apply their own legacy policy (usually: parse + validate, and
// quarantine on failure).
package atomicio

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hdpower/internal/faultpoint"
)

// trailerPrefix starts the checksum trailer line. The leading '#' keeps
// the line visually distinct from the JSON payload above it.
const trailerPrefix = "#hdpower-sha256:"

// ErrNoChecksum reports a file without a checksum trailer (written before
// this package existed). ReadFile returns it together with the payload.
var ErrNoChecksum = errors.New("atomicio: no checksum trailer")

// CorruptError reports a file whose content cannot be trusted: checksum
// mismatch, mangled trailer, or caller-detected invalid payload. The file
// has already been quarantined when Quarantined is non-empty.
type CorruptError struct {
	// Path is the file that failed verification.
	Path string
	// Reason says what failed.
	Reason string
	// Quarantined is where the bad file was moved ("" if the rename
	// failed or was not attempted).
	Quarantined string
}

func (e *CorruptError) Error() string {
	if e.Quarantined != "" {
		return fmt.Sprintf("atomicio: %s is corrupt (%s); quarantined to %s",
			e.Path, e.Reason, e.Quarantined)
	}
	return fmt.Sprintf("atomicio: %s is corrupt (%s)", e.Path, e.Reason)
}

// IsCorrupt reports whether err (or anything it wraps) is a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// WriteFile atomically and durably replaces path with data plus a
// checksum trailer. On any error the destination is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	if ferr := faultpoint.Hit("atomicio.write"); ferr != nil {
		// Simulate a torn write: half the payload lands in the temp file
		// and the write "fails". The destination must stay intact — that
		// is the property chaos runs exercise.
		_, _ = tmp.Write(data[:len(data)/2])
		return fmt.Errorf("atomicio: write %s: %w", path, ferr)
	}

	if _, err := tmp.Write(appendTrailer(data)); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	return syncDir(dir)
}

// WriteJSON marshals v as indented JSON and writes it atomically.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("atomicio: encode %s: %w", path, err)
	}
	return WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile reads path and verifies its checksum trailer, returning the
// payload without the trailer.
//
//   - Verified:            (payload, nil)
//   - No trailer (legacy): (payload, ErrNoChecksum)
//   - Corrupt:             (nil, *CorruptError), file quarantined
//   - I/O error:           (nil, err) with os sentinel semantics intact
func ReadFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, sum, length, ok := splitTrailer(raw)
	if !ok {
		return raw, ErrNoChecksum
	}
	if length < 0 || length > len(payload) {
		return nil, quarantineCorrupt(path, "trailer length out of range")
	}
	payload = payload[:length]
	got := sha256.Sum256(payload)
	if hex.EncodeToString(got[:]) != sum {
		return nil, quarantineCorrupt(path, "checksum mismatch")
	}
	return payload, nil
}

// ReadJSON reads, verifies, and unmarshals path into v. A file that fails
// to parse — checksummed or legacy — is quarantined and reported corrupt:
// by the time JSON syntax breaks, the bytes cannot be trusted either way.
func ReadJSON(path string, v any) error {
	data, err := ReadFile(path)
	if err != nil && !errors.Is(err, ErrNoChecksum) {
		return err
	}
	if jerr := json.Unmarshal(data, v); jerr != nil {
		return quarantineCorrupt(path, fmt.Sprintf("invalid JSON: %v", jerr))
	}
	return err // nil or ErrNoChecksum
}

// Quarantine moves a bad file aside to <path>.corrupt (replacing any
// earlier quarantine) so it stops poisoning loads but stays available for
// post-mortems. It returns the quarantine path ("" if the move failed).
func Quarantine(path string) string {
	q := path + ".corrupt"
	if err := os.Rename(path, q); err != nil {
		return ""
	}
	return q
}

// MarkCorrupt quarantines path and returns the typed corruption error;
// callers use it when their own validation (schema, invariants) fails on
// a file that passed — or predates — the checksum.
func MarkCorrupt(path, reason string) error {
	return quarantineCorrupt(path, reason)
}

func quarantineCorrupt(path, reason string) error {
	return &CorruptError{Path: path, Reason: reason, Quarantined: Quarantine(path)}
}

// appendTrailer returns data plus the checksum trailer line. The checksum
// covers exactly data; a newline is inserted first when data does not end
// with one, and the recorded payload length lets ReadFile return the
// original bytes unchanged either way.
func appendTrailer(data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, len(data)+len(trailerPrefix)+80)
	out = append(out, data...)
	if len(data) == 0 || data[len(data)-1] != '\n' {
		out = append(out, '\n')
	}
	out = append(out, trailerPrefix...)
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, ':')
	out = strconv.AppendInt(out, int64(len(data)), 10)
	out = append(out, '\n')
	return out
}

// splitTrailer isolates the trailer line. ok is false when no trailer is
// present (legacy file); a present-but-mangled trailer returns ok with an
// out-of-range length or wrong-size sum so verification fails loudly
// rather than silently treating the file as legacy.
func splitTrailer(raw []byte) (payload []byte, sum string, length int, ok bool) {
	trimmed := bytes.TrimSuffix(raw, []byte("\n"))
	nl := bytes.LastIndexByte(trimmed, '\n')
	line := trimmed[nl+1:] // nl == -1 → whole content
	if !bytes.HasPrefix(line, []byte(trailerPrefix)) {
		return raw, "", 0, false
	}
	fields := bytes.Split(line[len(trailerPrefix):], []byte(":"))
	if len(fields) != 2 {
		return raw[:nl+1], "", -1, true
	}
	n, err := strconv.Atoi(string(fields[1]))
	if err != nil {
		return raw[:nl+1], string(fields[0]), -1, true
	}
	return raw[:nl+1], string(fields[0]), n, true
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Platforms that refuse to open directories degrade to a no-op.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	return nil
}
