package atomicio

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte(`{"basic":[{"count":3,"sum":1.5}]}`),
		bytes.Repeat([]byte{0x00, 0xff}, 4096),
	} {
		sealed := Seal(payload)
		got, err := Unseal(sealed)
		if err != nil {
			t.Fatalf("Unseal(Seal(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip of %d bytes not identical", len(payload))
		}
	}
}

func TestUnsealRejectsMissingTrailer(t *testing.T) {
	if _, err := Unseal([]byte("no trailer here")); !errors.Is(err, ErrNoChecksum) {
		t.Fatalf("want ErrNoChecksum, got %v", err)
	}
}

func TestUnsealRejectsTornPayload(t *testing.T) {
	sealed := Seal([]byte("partial accumulators for shards 8..16 of some build"))
	// A torn upload keeps the trailer-bearing tail or loses bytes from the
	// middle; either way verification must fail, never return garbage.
	for cut := 1; cut < len(sealed); cut++ {
		torn := append(append([]byte(nil), sealed[:cut/2]...), sealed[cut/2+1:]...)
		if _, err := Unseal(torn); err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
	}
}

func TestUnsealRejectsFlippedBit(t *testing.T) {
	sealed := Seal([]byte("bit flips must not survive the trailer"))
	sealed[3] ^= 0x10
	_, err := Unseal(sealed)
	if err == nil {
		t.Fatal("flipped payload accepted")
	}
	if !IsCorrupt(err) && !errors.Is(err, ErrNoChecksum) {
		t.Fatalf("unexpected error type: %v", err)
	}
}
