package atomicio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdpower/internal/faultpoint"
)

func write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("{\"a\": 1}\n"),
		[]byte("no trailing newline"),
		[]byte(""),
		bytes.Repeat([]byte("x"), 1<<16),
	} {
		path := filepath.Join(t.TempDir(), "f.json")
		write(t, path, data)
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch: wrote %d bytes, read %d", len(data), len(back))
		}
	}
}

func TestTrailerIsHumanVisible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.json")
	write(t, path, []byte("{}\n"))
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), "#hdpower-sha256:") {
		t.Fatalf("no trailer in %q", raw)
	}
}

// TestTruncationDetected is the core corruption story: any truncation of
// a durable file must fail verification, never parse as valid.
func TestTruncationDetected(t *testing.T) {
	full := []byte(`{"module":"adder","coeffs":[1,2,3,4,5,6,7,8]}` + "\n")
	path := filepath.Join(t.TempDir(), "f.json")
	write(t, path, full)
	raw, _ := os.ReadFile(path)

	for cut := 1; cut < len(raw); cut += 7 {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFile(path)
		if err == nil {
			// Losing only cosmetic trailing bytes (e.g. the final newline
			// of the trailer line) may still verify — but then the payload
			// must be byte-exact, never silently wrong.
			if !bytes.Equal(payload, full) {
				t.Fatalf("truncation by %d bytes loaded a wrong payload", cut)
			}
			continue
		}
		if !IsCorrupt(err) && !errors.Is(err, ErrNoChecksum) {
			t.Fatalf("truncation by %d: unexpected error %v", cut, err)
		}
		// Cuts that only damage the trailer must quarantine; cuts deep
		// enough to remove the trailer line entirely degrade to the
		// legacy path, where callers re-validate.
		if IsCorrupt(err) {
			if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
				t.Fatalf("cut %d: corrupt file not quarantined: %v", cut, statErr)
			}
			if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
				t.Fatalf("cut %d: corrupt file still present", cut)
			}
		}
		os.Remove(path + ".corrupt")
	}
}

func TestBitFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.json")
	write(t, path, []byte(`{"p": 0.25}`+"\n"))
	raw, _ := os.ReadFile(path)
	raw[3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if !IsCorrupt(err) {
		t.Fatalf("bit flip not detected: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Quarantined == "" {
		t.Fatalf("not quarantined: %v", err)
	}
}

func TestLegacyFileReturnsErrNoChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, []byte(`{"ok":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(path)
	if !errors.Is(err, ErrNoChecksum) {
		t.Fatalf("want ErrNoChecksum, got %v", err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("legacy payload %q", data)
	}
}

func TestReadJSON(t *testing.T) {
	type doc struct {
		N int `json:"n"`
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "d.json")
	if err := WriteJSON(path, doc{N: 7}); err != nil {
		t.Fatal(err)
	}
	var d doc
	if err := ReadJSON(path, &d); err != nil || d.N != 7 {
		t.Fatalf("ReadJSON: %v, %+v", err, d)
	}

	// Valid checksum over invalid JSON (caller wrote garbage) must still
	// come back corrupt, not as a zero-valued struct.
	bad := filepath.Join(dir, "bad.json")
	write(t, bad, []byte("{truncated"))
	if err := ReadJSON(bad, &d); !IsCorrupt(err) {
		t.Fatalf("invalid JSON not reported corrupt: %v", err)
	}
}

func TestMissingFile(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.json"))
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.json")
	write(t, path, []byte("old"))
	write(t, path, []byte("new"))
	data, err := ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("got %q, %v", data, err)
	}
}

// TestFaultInjectedWriteLeavesDestinationIntact arms the atomicio.write
// fault point and checks the atomicity contract: the failed write leaves
// the previous file fully readable.
func TestFaultInjectedWriteLeavesDestinationIntact(t *testing.T) {
	faultpoint.Disarm()
	path := filepath.Join(t.TempDir(), "f.json")
	write(t, path, []byte("stable state"))

	if err := faultpoint.Arm("atomicio.write=error"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Disarm)
	err := WriteFile(path, []byte("half-written replacement"), 0o644)
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	faultpoint.Disarm()

	data, rerr := ReadFile(path)
	if rerr != nil || string(data) != "stable state" {
		t.Fatalf("destination damaged by failed write: %q, %v", data, rerr)
	}
}

func TestMarkCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.json")
	write(t, path, []byte(`{"schema": "valid json, wrong shape"}`))
	err := MarkCorrupt(path, "coefficient count mismatch")
	if !IsCorrupt(err) {
		t.Fatalf("MarkCorrupt: %v", err)
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Fatalf("not quarantined: %v", statErr)
	}
}
