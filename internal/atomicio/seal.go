package atomicio

import (
	"crypto/sha256"
	"encoding/hex"
)

// seal.go applies the package's checksum-trailer discipline to payloads
// that travel over a wire instead of through WriteFile. The distributed
// characterization fleet seals each partial-accumulator upload so a torn
// or bit-flipped HTTP body is detected by the coordinator exactly the way
// a torn file is detected on load — same trailer, same failure taxonomy —
// and the shard range is re-leased instead of merging garbage.

// Seal returns data plus the SHA-256 checksum trailer WriteFile would
// have appended. The result is self-verifying: Unseal recovers data
// exactly, or reports corruption.
func Seal(data []byte) []byte { return appendTrailer(data) }

// Unseal verifies and strips the checksum trailer of an in-memory
// payload, returning the original bytes. Unlike ReadFile there is no file
// to quarantine: a payload without a trailer returns ErrNoChecksum, and a
// payload that fails verification returns a *CorruptError (Path "(sealed
// payload)", nothing quarantined), so receivers can reject the bytes —
// and have them re-sent — instead of trusting a torn copy.
func Unseal(raw []byte) ([]byte, error) {
	payload, sum, length, ok := splitTrailer(raw)
	if !ok {
		return nil, ErrNoChecksum
	}
	if length < 0 || length > len(payload) {
		return nil, &CorruptError{Path: "(sealed payload)", Reason: "trailer length out of range"}
	}
	payload = payload[:length]
	got := sha256.Sum256(payload)
	if hex.EncodeToString(got[:]) != sum {
		return nil, &CorruptError{Path: "(sealed payload)", Reason: "checksum mismatch"}
	}
	return payload, nil
}
