package faultpoint

// Known is the registry of every fault point planted in the codebase —
// the single source of truth chaos arming specs (Makefile chaos target,
// CI chaos job, HDPOWER_FAULTPOINTS) are written against.
//
// hdlint's faultpoint analyzer cross-checks this list on every lint run:
// each entry must be unique, must have a faultpoint.Hit or
// faultpoint.Delay call site somewhere in the module, and must be
// exercised by a Makefile arming spec or a test; conversely, every call
// site must use a literal name registered here. Add the name to this
// list in the same change that plants the point, and wire it into the
// Makefile chaos target so chaos coverage never silently decays.
var Known = []string{
	"atomicio.write",    // torn durable write (internal/atomicio.WriteFile)
	"bitsim.batch",      // slow bit-parallel batch (internal/bitsim CycleBatch)
	"core.merge",        // shard merge failure (internal/core Characterize)
	"core.shard",        // straggling shard worker (internal/core runCharShard)
	"fleet.heartbeat",   // dropped lease heartbeat (internal/fleet coordinator)
	"fleet.lease",       // failed lease grant (internal/fleet coordinator)
	"fleet.merge",       // deferred partial-accumulator merge (internal/fleet coordinator)
	"fleet.upload",      // torn partial-accumulator upload (internal/fleet worker)
	"serve.build",       // transient model-build dispatch failure (internal/serve)
	"telemetry.capture", // SLO-breach diagnostic capture write failure (internal/serve)
}

// Registered reports whether name is in the Known registry.
func Registered(name string) bool {
	for _, n := range Known {
		if n == name {
			return true
		}
	}
	return false
}
