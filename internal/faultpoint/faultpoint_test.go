package faultpoint

import (
	"errors"
	"testing"
	"time"
)

// Tests share the package-global registry, so each arms fresh and disarms
// on cleanup. (Under a chaos run the env arming is replaced for the
// duration of the test; that is the point.)
func arm(t *testing.T, spec string) {
	t.Helper()
	Disarm()
	if err := Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed after Disarm")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	arm(t, "x=error")
	err := Hit("x")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != "x" {
		t.Fatalf("want InjectedError{x}, got %#v", err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestAfterCount(t *testing.T) {
	arm(t, "x=error:after=3")
	for i := 1; i <= 5; i++ {
		err := Hit("x")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
	}
	if Hits("x") != 5 {
		t.Fatalf("hits = %d, want 5", Hits("x"))
	}
}

func TestSlowMode(t *testing.T) {
	arm(t, "x=slow:delay=30ms")
	start := time.Now()
	if err := Hit("x"); err != nil {
		t.Fatalf("slow mode returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slow hit returned after %v", d)
	}
}

func TestDelayNeverErrors(t *testing.T) {
	arm(t, "x=error")
	Delay("x") // must not panic or leak the error
	if Hits("x") != 1 {
		t.Fatalf("Delay did not count the hit")
	}
}

func TestProbability(t *testing.T) {
	arm(t, "x=error:p=0.5")
	Seed(42)
	fired := 0
	for i := 0; i < 1000; i++ {
		if Hit("x") != nil {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Fatalf("p=0.5 fired %d/1000", fired)
	}
}

func TestMultiEntrySpec(t *testing.T) {
	arm(t, "a=error; b=slow:delay=1us, c=error:after=2")
	if Hit("a") == nil {
		t.Fatal("a not armed")
	}
	if Hit("b") != nil {
		t.Fatal("b should be slow, not error")
	}
	if Hit("c") != nil {
		t.Fatal("c fired on first hit")
	}
	if Hit("c") == nil {
		t.Fatal("c did not fire on second hit")
	}
}

func TestBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"", "noequals", "x=explode", "x=error:after=0", "x=error:p=2",
		"x=slow:delay=later", "x=error:bogus=1",
	} {
		Disarm()
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	Disarm()
}
