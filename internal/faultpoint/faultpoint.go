// Package faultpoint is a fault-injection registry for robustness tests
// and chaos runs. Production code plants named fault points at the places
// where the real world fails — a shard merge, a model-file write, a build
// dispatch — and tests (or a chaos CI job) arm them with failure modes:
//
//	faultpoint.Arm("core.merge=error:after=3")          // 3rd merge fails
//	faultpoint.Arm("core.shard=slow:delay=200us:p=0.05") // 5% of shards lag
//	HDPOWER_FAULTPOINTS='atomicio.write=error' go test ./...
//
// A spec is a semicolon- or comma-separated list of `name=mode[:opt...]`
// entries. Modes:
//
//	error        Hit returns an *InjectedError (wraps ErrInjected)
//	slow         Hit and Delay sleep for `delay` and return nil
//
// Options (colon-separated, any order after the mode):
//
//	after=N      trigger only on the Nth hit of the point (1-based)
//	p=F          trigger each hit with probability F in (0, 1]
//	delay=DUR    sleep duration for slow mode (default 1ms)
//
// When nothing is armed — the normal production state — Hit and Delay cost
// one atomic load and return immediately, so fault points are free to
// leave in hot paths. The HDPOWER_FAULTPOINTS environment variable is
// parsed once at init, which is how the chaos CI job arms an entire test
// binary without code changes.
package faultpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable parsed at init to arm fault points
// process-wide (chaos runs).
const EnvVar = "HDPOWER_FAULTPOINTS"

// ErrInjected is the sentinel every injected failure wraps; callers and
// tests match it with errors.Is.
var ErrInjected = errors.New("injected fault")

// InjectedError is the error returned by a triggered error-mode fault
// point.
type InjectedError struct {
	// Point is the fault point name that fired.
	Point string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultpoint: %s: injected fault", e.Point)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Mode names accepted by Arm.
const (
	modeError = "error"
	modeSlow  = "slow"
)

// point is one armed fault point.
type point struct {
	name  string
	mode  string
	after int64
	prob  float64
	delay time.Duration
	hits  atomic.Int64
}

var (
	armed  atomic.Bool
	mu     sync.RWMutex
	points map[string]*point
	rng    = rand.New(rand.NewSource(1)) // guarded by mu (write lock)
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultpoint: ignoring %s: %v\n", EnvVar, err)
		}
	}
}

// Armed reports whether any fault point is armed. It is the fast path
// every Hit takes first, so disarmed fault points are effectively free.
func Armed() bool { return armed.Load() }

// Arm parses a spec string and adds its fault points to the registry,
// replacing same-named points. See the package comment for the grammar.
func Arm(spec string) error {
	parsed, err := parseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	for _, p := range parsed {
		points[p.name] = p
	}
	armed.Store(len(points) > 0)
	return nil
}

// Disarm removes every armed fault point, restoring the zero-cost state.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(false)
}

// Seed reseeds the probability sampler, so chaos runs can be replayed.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Hits returns how many times the named point has been hit since it was
// armed (0 when not armed); tests use it to assert a site is exercised.
func Hits(name string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	if p, ok := points[name]; ok {
		return p.hits.Load()
	}
	return 0
}

// Hit records a hit on the named fault point and returns the injected
// error if the point is armed in error mode and triggers. Slow-mode points
// sleep and return nil, so a Hit site doubles as a Delay site. Call it at
// places whose failure the surrounding code must tolerate.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	return hitSlow(name, true)
}

// Delay is Hit for sites that have no error path: slow-mode points sleep,
// error-mode points count the hit but inject nothing.
func Delay(name string) {
	if !armed.Load() {
		return
	}
	_ = hitSlow(name, false)
}

func hitSlow(name string, allowError bool) error {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	n := p.hits.Add(1)
	if p.after > 0 && n != p.after {
		return nil
	}
	if p.prob > 0 && !sample(p.prob) {
		return nil
	}
	switch p.mode {
	case modeSlow:
		time.Sleep(p.delay)
		return nil
	case modeError:
		if allowError {
			return &InjectedError{Point: name}
		}
		return nil
	}
	return nil
}

func sample(prob float64) bool {
	mu.Lock()
	defer mu.Unlock()
	return rng.Float64() < prob
}

// parseSpec parses the full arming string into points.
func parseSpec(spec string) ([]*point, error) {
	split := func(r rune) bool { return r == ';' || r == ',' }
	var out []*point
	for _, entry := range strings.FieldsFunc(spec, split) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		p, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultpoint: empty spec %q", spec)
	}
	return out, nil
}

func parseEntry(entry string) (*point, error) {
	name, rest, ok := strings.Cut(entry, "=")
	if !ok || name == "" {
		return nil, fmt.Errorf("faultpoint: entry %q is not name=mode", entry)
	}
	parts := strings.Split(rest, ":")
	p := &point{name: name, mode: parts[0], delay: time.Millisecond}
	switch p.mode {
	case modeError, modeSlow:
	default:
		return nil, fmt.Errorf("faultpoint: %s: unknown mode %q (want error or slow)", name, parts[0])
	}
	for _, opt := range parts[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return nil, fmt.Errorf("faultpoint: %s: option %q is not key=value", name, opt)
		}
		switch k {
		case "after":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faultpoint: %s: after=%q is not a positive integer", name, v)
			}
			p.after = n
		case "p":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, fmt.Errorf("faultpoint: %s: p=%q is not in (0, 1]", name, v)
			}
			p.prob = f
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultpoint: %s: delay=%q is not a duration", name, v)
			}
			p.delay = d
		default:
			return nil, fmt.Errorf("faultpoint: %s: unknown option %q", name, k)
		}
	}
	return p, nil
}
