package hdpower

import (
	"math"
	"strings"
	"testing"

	"hdpower/internal/bdd"
	"hdpower/internal/hddist"
	"hdpower/internal/propagate"
	"hdpower/internal/regress"
	"hdpower/internal/sim"
	"hdpower/internal/stats"
	"hdpower/internal/verilog"
)

// TestPipelineBuildVerilogSweepEquivCharacterizeEstimate exercises the
// full tool chain on one module: generate → export/import Verilog →
// optimize → prove all variants equivalent → characterize → estimate →
// dump waveforms. Every stage must agree with the others.
func TestPipelineBuildVerilogSweepEquivCharacterizeEstimate(t *testing.T) {
	const module = "cla-adder"
	const width = 6

	// Generate.
	nl, err := Build(module, width)
	if err != nil {
		t.Fatal(err)
	}

	// Verilog round trip.
	var sb strings.Builder
	if err := verilog.Write(&sb, nl); err != nil {
		t.Fatal(err)
	}
	reread, err := verilog.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	// Sweep the re-read netlist.
	swept, err := reread.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	// All three must be formally equivalent.
	for name, other := range map[string]*Netlist{"reread": reread, "swept": swept} {
		eq, cex, err := bdd.Equivalent(nl, other)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !eq {
			t.Fatalf("%s netlist differs from generated at %+v", name, cex)
		}
	}

	// Characterize the original and estimate the re-read netlist (gate
	// identical, so the model transfers exactly).
	model, err := Characterize(nl, module, CharacterizeOptions{Patterns: 3000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	words := TakeWords(OperandStream(TypeMusic, width, 2, 17), 1201)
	report, err := Estimate(model, reread, words)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.AvgErr) > 15 {
		t.Errorf("cross-netlist estimation error %.1f%%", report.AvgErr)
	}

	// The sweep folds the constant-carry-in logic of the CLA blocks away,
	// so the swept netlist must consume measurably LESS power on the same
	// stream while computing the same function.
	sweptMeter, err := NewMeter(swept)
	if err != nil {
		t.Fatal(err)
	}
	sweptTrace, err := sweptMeter.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	if sweptTrace.Mean() >= report.SimulatedAvg {
		t.Errorf("sweep did not reduce power: %.1f vs %.1f",
			sweptTrace.Mean(), report.SimulatedAvg)
	}

	// Waveform dump of a few cycles must succeed on the swept netlist.
	var vcd strings.Builder
	if err := sim.DumpVCD(&vcd, swept, words[:5], 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcd.String(), "$enddefinitions") {
		t.Error("VCD incomplete")
	}
}

// TestPipelineRegressionToAnalyticPower goes from three prototype
// characterizations to a simulation-free average-power estimate of an
// unseen width driven by propagated word statistics.
func TestPipelineRegressionToAnalyticPower(t *testing.T) {
	const module = "ripple-adder"

	var protos []regress.Prototype
	for _, w := range regress.SetThi.Widths() {
		nl, err := Build(module, w)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Characterize(nl, module, CharacterizeOptions{Patterns: 3000, Seed: int64(w)})
		if err != nil {
			t.Fatal(err)
		}
		protos = append(protos, regress.Prototype{Width: w, Model: m})
	}
	pm, err := regress.Fit(module, protos, regress.BasisFor(module), 2)
	if err != nil {
		t.Fatal(err)
	}

	// Target: width 12 (never characterized), fed by a filtered stream
	// whose statistics come from propagation (never simulated).
	const targetWidth = 12
	g := propagate.New()
	x := g.Input("x", stats.WordStats{Mean: 0, Std: 300, Rho: 0.9})
	y := g.Add(x, g.Delay(x, 1)) // smoother
	ws := g.Stats(y)
	portDist := hddist.FromWordStats(ws, targetWidth)
	dist := hddist.Convolve(portDist, portDist)

	model := pm.Synthesize(targetWidth)
	analytic, err := model.AvgFromDist(dist)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: simulate the real width-12 adder on a materialized
	// version of the same construction.
	nl, err := Build(module, targetWidth)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := NewMeter(nl)
	if err != nil {
		t.Fatal(err)
	}
	xsA := streamInts(targetWidth, 300, 0.9, 101, 6001)
	xsB := streamInts(targetWidth, 300, 0.9, 202, 6001)
	words := make([]Word, 6000)
	for i := range words {
		a := clampTo(targetWidth, xsA[i]+xsA[i+1])
		b := clampTo(targetWidth, xsB[i]+xsB[i+1])
		words[i] = WordFromInt(a, targetWidth).Concat(WordFromInt(b, targetWidth))
	}
	tr, err := meter.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(analytic-tr.Mean()) / tr.Mean()
	if rel > 0.25 {
		t.Errorf("fully analytic estimate %.1f vs simulated %.1f (%.0f%% off)",
			analytic, tr.Mean(), rel*100)
	}
}

// streamInts synthesizes a seeded Gaussian AR(1) integer stream without
// depending on stimuli internals.
func streamInts(width int, std float64, rho float64, seed int64, n int) []int64 {
	_ = width
	out := make([]int64, n)
	state := 0.0
	rng := newDeterministicGaussian(seed)
	for i := range out {
		state = rho*state + math.Sqrt(1-rho*rho)*std*rng()
		out[i] = int64(math.Round(state))
	}
	return out
}

// newDeterministicGaussian returns a seeded standard-normal generator
// (Box-Muller over a simple LCG) so the test has no dependency on
// unexported stimuli internals.
func newDeterministicGaussian(seed int64) func() float64 {
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
	var spare float64
	var has bool
	return func() float64 {
		if has {
			has = false
			return spare
		}
		u1, u2 := next(), next()
		for u1 == 0 {
			u1 = next()
		}
		r := math.Sqrt(-2 * math.Log(u1))
		spare = r * math.Sin(2*math.Pi*u2)
		has = true
		return r * math.Cos(2*math.Pi*u2)
	}
}

func clampTo(width int, v int64) int64 {
	hi := int64(1)<<uint(width-1) - 1
	lo := -int64(1) << uint(width-1)
	if v > hi {
		return hi
	}
	if v < lo {
		return lo
	}
	return v
}
