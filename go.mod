module hdpower

go 1.22
