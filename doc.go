// Package hdpower is a from-scratch reproduction of "A New
// Parameterizable Power Macro-Model for Datapath Components"
// (Jochens, Kruse, Schmidt, Nebel — OFFIS; DATE 1999).
//
// The library models the power consumption of combinational datapath
// components (adders, multipliers, absolute-value units, …) as a function
// of the Hamming-distance of consecutive input vectors. It contains every
// substrate the paper depends on, built on the Go standard library alone:
//
//   - a gate-level netlist representation and cell library,
//   - zero-delay and event-driven (glitch-aware) logic simulators with a
//     switched-capacitance charge model — the stand-in for the paper's
//     PowerMill reference,
//   - generators for the paper's datapath components (ripple/CLA adders,
//     absval, CSA array multiplier, Booth-Wallace multiplier, and more) —
//     the stand-in for the Synopsys DesignWare library,
//   - seeded synthetic data streams for the paper's five stimulus classes
//     (random, music, speech, video, counter),
//   - the basic and enhanced Hd macro-models with characterization,
//   - bit-width parameterization by complexity-function regression,
//   - word-level statistics, dual-bit-type breakpoints, and the analytic
//     Hamming-distance distribution of Section 6,
//   - experiment drivers that regenerate every table and figure of the
//     paper's evaluation (see internal/experiments and cmd/repro).
//
// # Concurrency
//
// Characterization is parallel by default: the pattern stream is split
// into fixed-size shards, each shard draws from a PairSource seeded by
// (seed, stream, shard index), and a pool of simulator clones — sharing
// the immutable netlist, one mutable state each — runs the shards
// concurrently. Partial results merge in shard-index order, so the fitted
// model is bit-identical for every worker count, including 1; the
// CharacterizeOptions.Workers field (and the -workers flag of the CLIs)
// only trades goroutines for wall-clock time. See internal/core and the
// Clone contract in internal/sim for details.
//
// # Quick start
//
//	nl, _ := hdpower.Build("ripple-adder", 8)     // 8-bit operands
//	model, _ := hdpower.Characterize(nl, "add8", hdpower.CharacterizeOptions{})
//	stream := hdpower.OperandStream(hdpower.TypeSpeech, 8, 2 /* ports */, 1 /* seed */)
//	report, _ := hdpower.Estimate(model, nl, hdpower.TakeWords(stream, 5001))
//	fmt.Println(report)
//
// The deeper APIs live in the internal packages and are re-exported here
// through type aliases, so everything reachable from this package is
// usable directly.
package hdpower
