GO ?= go

# The staticcheck release CI pins; `make lint` reports it when the tool
# is not installed locally.
STATICCHECK_VERSION ?= 2024.1.1

# Enforced coverage floors (percent of statements) for the packages the
# paper's correctness hangs on; `make cover` fails below them. The LUT
# and Hd-distribution memo floors guard the estimate fast path: a wrong
# flattened table silently misprices every fast-path answer. The
# telemetry floor guards the measurement plane itself: a wrong window
# ring or burn rate silently mispages and misbudgets refinement.
COVER_FLOOR_CORE      ?= 90
COVER_FLOOR_SIM       ?= 90
COVER_FLOOR_BITSIM    ?= 90
COVER_FLOOR_LUT       ?= 90
COVER_FLOOR_HDDIST    ?= 90
COVER_FLOOR_TELEMETRY ?= 90

.PHONY: test lint race chaos cover bench bench-char bench-fresh bench-gate repro \
	serve-bench serve-fresh serve-load serve-gate

# Tier-1 gate: everything builds, everything passes.
test:
	$(GO) build ./...
	$(GO) test ./...

# Static gate, matching CI's lint job: formatting, vet, the repo's own
# hdlint analyzers (determinism, atomic writes, fault points, hook
# balance), and — when installed — the pinned staticcheck.
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/hdlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed, skipping (CI pins $(STATICCHECK_VERSION):"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Race-detector pass over every package (the concurrent surfaces —
# characterization engine, simulator clones, experiment suite, serving
# layer, durability + fault-injection layers, metrics + tracing — plus
# everything they pull in; sequential packages cost seconds).
race:
	$(GO) test -race ./...

# Chaos pass: the crash-safety test suite re-run with slow-mode fault
# points armed (stretching the crash windows that checkpointing, atomic
# writes and build retries protect) under the race detector. Error-mode
# faults are exercised deterministically by the unit tests themselves;
# arming slow faults here shifts goroutine interleavings without making
# any test nondeterministically fail.
chaos:
	HDPOWER_FAULTPOINTS='core.shard=slow:p=0.2:delay=2ms;core.merge=slow:p=0.2:delay=2ms;bitsim.batch=slow:p=0.2:delay=2ms;atomicio.write=slow:p=0.3:delay=2ms;serve.build=slow:p=0.5:delay=5ms;telemetry.capture=slow:p=0.5:delay=2ms;fleet.lease=slow:p=0.2:delay=2ms;fleet.upload=slow:p=0.2:delay=2ms;fleet.heartbeat=slow:p=0.2:delay=2ms;fleet.merge=slow:p=0.2:delay=2ms' \
		$(GO) test -race -count=1 ./internal/core/... ./internal/bitsim/... ./internal/atomicio/... \
		./internal/faultpoint/... ./internal/modellib/... ./internal/serve/... ./internal/fleet/...

# Coverage profiles with enforced floors on internal/core and
# internal/sim; CI publishes the profiles as artifacts.
cover:
	$(GO) test -coverprofile=coverage_core.out ./internal/core
	$(GO) test -coverprofile=coverage_sim.out ./internal/sim
	$(GO) test -coverprofile=coverage_bitsim.out ./internal/bitsim
	$(GO) test -coverprofile=coverage_lut.out ./internal/lut
	$(GO) test -coverprofile=coverage_hddist.out ./internal/hddist
	$(GO) test -coverprofile=coverage_telemetry.out ./internal/telemetry
	@for spec in core:$(COVER_FLOOR_CORE) sim:$(COVER_FLOOR_SIM) bitsim:$(COVER_FLOOR_BITSIM) \
			lut:$(COVER_FLOOR_LUT) hddist:$(COVER_FLOOR_HDDIST) \
			telemetry:$(COVER_FLOOR_TELEMETRY); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		total=$$($(GO) tool cover -func=coverage_$$pkg.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/$$pkg coverage: $$total% (floor $$floor%)"; \
		awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t >= f) }' || \
			{ echo "FAIL: internal/$$pkg coverage $$total% below floor $$floor%"; exit 1; }; \
	done

# Full benchmark sweep.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Characterization throughput across worker counts, published as JSON for
# trajectory tracking. Overwrites the committed baseline — use bench-gate
# to compare against it instead.
bench-char:
	$(GO) test -run '^$$' -bench 'BenchmarkCharacterize(Parallel|BitParallel)' -benchtime 2x . | $(GO) run ./cmd/benchjson > BENCH_characterize.json
	@cat BENCH_characterize.json

# Fresh benchmark numbers without touching the committed baseline.
bench-fresh:
	$(GO) test -run '^$$' -bench 'BenchmarkCharacterize(Parallel|BitParallel)' -benchtime 2x . | $(GO) run ./cmd/benchjson > BENCH_fresh.json
	@cat BENCH_fresh.json

# Bench-regression gate: fail on >25% patterns/sec regression against the
# committed BENCH_characterize.json, and on the bit-parallel backend's
# single-core speedup dropping below 5x the event engine (locally it
# measures >10x; the floor leaves headroom for load). CI additionally
# enforces the worker-scaling floor (benchcmp -min-scale 1.5) on its
# multi-core runners; that check is meaningless on a single-core host, so
# it is not applied here.
bench-gate: bench-fresh
	$(GO) run ./cmd/benchcmp -old BENCH_characterize.json -new BENCH_fresh.json -max-regress 0.25 \
		-min-speedup 5 \
		-speedup-base 'CharacterizeParallel/workers=1' \
		-speedup-target 'CharacterizeBitParallel/workers=1' 

# Serving-performance benchmark: start hdserve on a loopback port, drive
# it with the hdload closed-loop generator, and collect benchjson records
# (p50/p99 ns, qps, server-side allocs/op) for the unary and streaming
# estimate planes.
SERVE_ADDR ?= 127.0.0.1:18080
SERVE_LOAD_FLAGS ?= -models csa-multiplier:8,ripple-adder:8 -patterns 2000 \
	-mix mixed -concurrency 4 -duration 5s -warmup 1s -telemetry-check

# Overwrites the committed BENCH_serve.json baseline — use serve-gate to
# compare against it instead.
serve-bench:
	@$(MAKE) --no-print-directory serve-load SERVE_OUT=BENCH_serve.json

# Fresh numbers without touching the committed baseline.
serve-fresh:
	@$(MAKE) --no-print-directory serve-load SERVE_OUT=BENCH_serve_fresh.json

serve-load:
	$(GO) build -o bin/hdserve ./cmd/hdserve
	$(GO) build -o bin/hdload ./cmd/hdload
	@set -e; \
	bin/hdserve -addr $(SERVE_ADDR) >bin/hdserve.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	bin/hdload -url http://$(SERVE_ADDR) $(SERVE_LOAD_FLAGS) -o $(SERVE_OUT); \
	cat $(SERVE_OUT)

# Serving-latency/alloc gate: fresh hdload numbers must stay within 60%
# of the committed BENCH_serve.json on qps AND inside absolute budgets —
# p99 round-trip latency and server allocs per estimate, per plane. The
# allocs ceilings are the teeth: the unary plane pays ~75 net/http
# allocations per request and the streaming plane ~2 per line, so a
# regression that re-introduces per-estimate allocation (the lut fast
# path decaying to the legacy decoder) blows the stream ceiling
# immediately. The third invocation budgets the observability plane:
# a /v1/telemetry snapshot (ServeTelemetry, recorded by hdload's
# -telemetry-check pass) must answer under 10ms p99 with the full
# profiled-model state loaded. QPS floors depend on host speed, so like
# bench-gate's scaling floor they are CI-only (see
# .github/workflows/ci.yml).
serve-gate: serve-fresh
	$(GO) run ./cmd/benchcmp -old BENCH_serve.json -new BENCH_serve_fresh.json \
		-metric qps -max-regress 0.6 \
		-budget-match unary -max-p99 25000000 -max-allocs 150
	$(GO) run ./cmd/benchcmp -old BENCH_serve.json -new BENCH_serve_fresh.json \
		-metric qps -max-regress 0.6 \
		-budget-match stream -max-p99 80000000 -max-allocs 16
	$(GO) run ./cmd/benchcmp -old BENCH_serve.json -new BENCH_serve_fresh.json \
		-metric qps -max-regress 0.6 \
		-budget-match ServeTelemetry -max-p99 10000000

# Regenerate the paper's tables and figures at full scale.
repro:
	$(GO) run ./cmd/repro -exp all | tee repro_full.txt
