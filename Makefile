GO ?= go

.PHONY: test race bench bench-char repro

# Tier-1 gate: everything builds, everything passes.
test:
	$(GO) build ./...
	$(GO) test ./...

# Race-detector pass over the concurrent packages (characterization
# engine, simulator clones, experiment suite).
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/power/... ./internal/experiments/...

# Full benchmark sweep.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Characterization throughput across worker counts, published as JSON for
# trajectory tracking.
bench-char:
	$(GO) test -run '^$$' -bench BenchmarkCharacterizeParallel -benchtime 2x . | $(GO) run ./cmd/benchjson > BENCH_characterize.json
	@cat BENCH_characterize.json

# Regenerate the paper's tables and figures at full scale.
repro:
	$(GO) run ./cmd/repro -exp all | tee repro_full.txt
