GO ?= go

# The staticcheck release CI pins; `make lint` reports it when the tool
# is not installed locally.
STATICCHECK_VERSION ?= 2024.1.1

# Enforced coverage floors (percent of statements) for the packages the
# paper's correctness hangs on; `make cover` fails below them.
COVER_FLOOR_CORE   ?= 90
COVER_FLOOR_SIM    ?= 90
COVER_FLOOR_BITSIM ?= 90

.PHONY: test lint race chaos cover bench bench-char bench-fresh bench-gate repro

# Tier-1 gate: everything builds, everything passes.
test:
	$(GO) build ./...
	$(GO) test ./...

# Static gate, matching CI's lint job: formatting, vet, the repo's own
# hdlint analyzers (determinism, atomic writes, fault points, hook
# balance), and — when installed — the pinned staticcheck.
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/hdlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed, skipping (CI pins $(STATICCHECK_VERSION):"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Race-detector pass over every package (the concurrent surfaces —
# characterization engine, simulator clones, experiment suite, serving
# layer, durability + fault-injection layers, metrics + tracing — plus
# everything they pull in; sequential packages cost seconds).
race:
	$(GO) test -race ./...

# Chaos pass: the crash-safety test suite re-run with slow-mode fault
# points armed (stretching the crash windows that checkpointing, atomic
# writes and build retries protect) under the race detector. Error-mode
# faults are exercised deterministically by the unit tests themselves;
# arming slow faults here shifts goroutine interleavings without making
# any test nondeterministically fail.
chaos:
	HDPOWER_FAULTPOINTS='core.shard=slow:p=0.2:delay=2ms;core.merge=slow:p=0.2:delay=2ms;bitsim.batch=slow:p=0.2:delay=2ms;atomicio.write=slow:p=0.3:delay=2ms;serve.build=slow:p=0.5:delay=5ms' \
		$(GO) test -race -count=1 ./internal/core/... ./internal/bitsim/... ./internal/atomicio/... \
		./internal/faultpoint/... ./internal/modellib/... ./internal/serve/...

# Coverage profiles with enforced floors on internal/core and
# internal/sim; CI publishes the profiles as artifacts.
cover:
	$(GO) test -coverprofile=coverage_core.out ./internal/core
	$(GO) test -coverprofile=coverage_sim.out ./internal/sim
	$(GO) test -coverprofile=coverage_bitsim.out ./internal/bitsim
	@for spec in core:$(COVER_FLOOR_CORE) sim:$(COVER_FLOOR_SIM) bitsim:$(COVER_FLOOR_BITSIM); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		total=$$($(GO) tool cover -func=coverage_$$pkg.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/$$pkg coverage: $$total% (floor $$floor%)"; \
		awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t >= f) }' || \
			{ echo "FAIL: internal/$$pkg coverage $$total% below floor $$floor%"; exit 1; }; \
	done

# Full benchmark sweep.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Characterization throughput across worker counts, published as JSON for
# trajectory tracking. Overwrites the committed baseline — use bench-gate
# to compare against it instead.
bench-char:
	$(GO) test -run '^$$' -bench 'BenchmarkCharacterize(Parallel|BitParallel)' -benchtime 2x . | $(GO) run ./cmd/benchjson > BENCH_characterize.json
	@cat BENCH_characterize.json

# Fresh benchmark numbers without touching the committed baseline.
bench-fresh:
	$(GO) test -run '^$$' -bench 'BenchmarkCharacterize(Parallel|BitParallel)' -benchtime 2x . | $(GO) run ./cmd/benchjson > BENCH_fresh.json
	@cat BENCH_fresh.json

# Bench-regression gate: fail on >25% patterns/sec regression against the
# committed BENCH_characterize.json, and on the bit-parallel backend's
# single-core speedup dropping below 5x the event engine (locally it
# measures >10x; the floor leaves headroom for load). CI additionally
# enforces the worker-scaling floor (benchcmp -min-scale 1.5) on its
# multi-core runners; that check is meaningless on a single-core host, so
# it is not applied here.
bench-gate: bench-fresh
	$(GO) run ./cmd/benchcmp -old BENCH_characterize.json -new BENCH_fresh.json -max-regress 0.25 \
		-min-speedup 5 \
		-speedup-base 'CharacterizeParallel/workers=1' \
		-speedup-target 'CharacterizeBitParallel/workers=1' 

# Regenerate the paper's tables and figures at full scale.
repro:
	$(GO) run ./cmd/repro -exp all | tee repro_full.txt
