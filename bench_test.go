package hdpower

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/experiments"
	"hdpower/internal/stimuli"
)

// benchSuite is shared across benchmarks so each module instance is
// characterized once; the per-iteration cost is the experiment's own
// evaluation work, which is what the paper's tables measure.
var (
	benchOnce  sync.Once
	benchShare *experiments.Suite
)

func benchSuite() *experiments.Suite {
	benchOnce.Do(func() {
		cfg := experiments.Quick()
		cfg.EvalPatterns = 1500
		cfg.CharPatterns = 3000
		benchShare = experiments.New(cfg)
	})
	return benchShare
}

// BenchmarkFigure1 regenerates Figure 1: basic coefficients p_i with
// error bars for the 16-input-bit variants of the five paper modules.
func BenchmarkFigure1(b *testing.B) {
	s := benchSuite()
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		total = res.Modules[0].TotalEps
	}
	b.ReportMetric(total*100, "total-eps-%")
}

// BenchmarkFigure2 regenerates Figure 2: basic vs enhanced coefficients
// for the 8x8 CSA multiplier.
func BenchmarkFigure2(b *testing.B) {
	s := benchSuite()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		spread = res.Spread(3)
	}
	b.ReportMetric(spread*100, "hd3-spread-%")
}

// BenchmarkTable1 regenerates Table 1: basic-model estimation errors for
// every module and data type.
func BenchmarkTable1(b *testing.B) {
	s := benchSuite()
	var avgI, avgV float64
	for i := 0; i < b.N; i++ {
		res, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		avgI = res.AvgAverage[stimuli.TypeRandom]
		avgV = res.AvgAverage[stimuli.TypeCounter]
	}
	b.ReportMetric(avgI, "avg-eps-I-%")
	b.ReportMetric(avgV, "avg-eps-V-%")
}

// BenchmarkTable2 regenerates Table 2: basic vs enhanced model on the CSA
// multiplier.
func BenchmarkTable2(b *testing.B) {
	s := benchSuite()
	var basicV, enhV float64
	for i := 0; i < b.N; i++ {
		res, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.DataType == stimuli.TypeCounter {
				basicV, enhV = math.Abs(row.AvgBasic), math.Abs(row.AvgEnhanced)
			}
		}
	}
	b.ReportMetric(basicV, "basic-eps-V-%")
	b.ReportMetric(enhV, "enhanced-eps-V-%")
}

// BenchmarkFigure4 regenerates Figure 4: instance vs regression
// coefficients over the prototype widths.
func BenchmarkFigure4(b *testing.B) {
	s := benchSuite()
	var series int
	for i := 0; i < b.N; i++ {
		res, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		series = len(res.Series)
	}
	b.ReportMetric(float64(series), "series")
}

// BenchmarkTable3 regenerates Table 3: coefficient and estimation errors
// for the ALL/SEC/THI regression sets.
func BenchmarkTable3(b *testing.B) {
	s := benchSuite()
	var worstParamErr float64
	for i := 0; i < b.N; i++ {
		res, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		worstParamErr = 0
		for _, row := range res.Rows {
			if row.ParamErrAvg > worstParamErr {
				worstParamErr = row.ParamErrAvg
			}
		}
	}
	b.ReportMetric(worstParamErr, "worst-param-err-%")
}

// BenchmarkFigure6 regenerates Figure 6: distribution-weighted power vs
// power at the average Hamming-distance.
func BenchmarkFigure6(b *testing.B) {
	s := benchSuite()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		gap = math.Abs(res.AvgHdError())
	}
	b.ReportMetric(gap, "avgHd-err-%")
}

// BenchmarkFigure9 regenerates Figure 9: extracted vs analytic
// Hamming-distance distribution of the speech stream.
func BenchmarkFigure9(b *testing.B) {
	s := benchSuite()
	var tv float64
	for i := 0; i < b.N; i++ {
		res, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		tv = res.TotalVariation
	}
	b.ReportMetric(tv, "total-variation")
}

// BenchmarkEstimatorStudy regenerates the extension table comparing all
// average-power estimators (cycle Hd, analytic distribution, average Hd,
// DBT baseline).
func BenchmarkEstimatorStudy(b *testing.B) {
	s := benchSuite()
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := s.EstimatorStudy()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkEngineAblation regenerates the glitch-power ablation.
func BenchmarkEngineAblation(b *testing.B) {
	s := benchSuite()
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := s.EngineAblation()
		if err != nil {
			b.Fatal(err)
		}
		share = res.GlitchShare
	}
	b.ReportMetric(share*100, "glitch-share-%")
}

// BenchmarkZClusterAblation regenerates the enhanced-model clustering
// trade-off study.
func BenchmarkZClusterAblation(b *testing.B) {
	s := benchSuite()
	var coefs int
	for i := 0; i < b.N; i++ {
		res, err := s.ZClusterAblation()
		if err != nil {
			b.Fatal(err)
		}
		coefs = res.Rows[len(res.Rows)-1].Coefficients
	}
	b.ReportMetric(float64(coefs), "smallest-model-coefs")
}

// BenchmarkAdaptationStudy regenerates the LMS adaptation study (paper
// ref. [4]).
func BenchmarkAdaptationStudy(b *testing.B) {
	s := benchSuite()
	var after float64
	for i := 0; i < b.N; i++ {
		res, err := s.AdaptationStudy()
		if err != nil {
			b.Fatal(err)
		}
		after = math.Abs(res.ErrAfter)
	}
	b.ReportMetric(after, "adapted-eps-%")
}

// BenchmarkPortStudy regenerates the port-resolved model comparison.
func BenchmarkPortStudy(b *testing.B) {
	s := benchSuite()
	var frozen float64
	for i := 0; i < b.N; i++ {
		res, err := s.PortStudy()
		if err != nil {
			b.Fatal(err)
		}
		frozen = math.Abs(res.PortFrozen)
	}
	b.ReportMetric(frozen, "port-frozen-eps-%")
}

// BenchmarkBudgetStudy regenerates the characterization-budget
// convergence sweep.
func BenchmarkBudgetStudy(b *testing.B) {
	s := benchSuite()
	var drift float64
	for i := 0; i < b.N; i++ {
		res, err := s.BudgetStudy()
		if err != nil {
			b.Fatal(err)
		}
		drift = res.Rows[0].MaxCoefDrift
	}
	b.ReportMetric(drift*100, "smallest-budget-drift-%")
}

// BenchmarkRectStudy regenerates the eq. (8) rectangular regression
// study.
func BenchmarkRectStudy(b *testing.B) {
	s := benchSuite()
	var meanErr float64
	for i := 0; i < b.N; i++ {
		res, err := s.RectStudy()
		if err != nil {
			b.Fatal(err)
		}
		meanErr = res.AvgRelErr
	}
	b.ReportMetric(meanErr, "rect-mean-err-%")
}

// BenchmarkCharacterize measures the cost of characterizing one 8x8 CSA
// multiplier model from scratch — the per-prototype cost of Section 5's
// prototype sets.
func BenchmarkCharacterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nl, err := Build("csa-multiplier", 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Characterize(nl, "bench", CharacterizeOptions{Patterns: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeParallel measures sharded-characterization
// throughput across worker counts on the 16x16 CSA multiplier. The fitted
// model is bit-identical for every worker count (see core.Characterize);
// only the patterns/sec metric moves. CI stores this as
// BENCH_characterize.json via `make bench-char` and gates regressions
// with cmd/benchcmp.
//
// Workload sizing matters here: worker scaling is only visible once each
// worker owns several full 128-pattern shards and per-pattern simulation
// work dwarfs shard setup and ordered merging. 5120 patterns = 40 full
// shards (5 per worker at 8 workers) over a ~2.2k-gate netlist; the
// meter is built once outside the timed region so its construction cost
// doesn't serialize the measurement. The earlier shape (2000 patterns,
// meter built per iteration) was too small to amortize the fan-out and
// benchmarked flat at every worker count.
//
// Expected shape on an unloaded n-core host: patterns/sec grows
// near-linearly up to min(workers, n) and flattens beyond; on a
// single-core host the whole curve is flat (the workers only time-slice).
// CI enforces >1.5x at workers=8 vs workers=1 on its multi-core runners
// via `benchcmp -min-scale 1.5`.
func BenchmarkCharacterizeParallel(b *testing.B) {
	const patterns = 5120
	nl, err := Build("csa-multiplier", 16)
	if err != nil {
		b.Fatal(err)
	}
	meter, err := NewMeter(nl)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Characterize(meter, "bench", core.CharacterizeOptions{
					Patterns: patterns, Seed: 1, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(patterns)*float64(b.N)/b.Elapsed().Seconds(), "patterns/sec")
		})
	}
}

// BenchmarkCharacterizeBitParallel is BenchmarkCharacterizeParallel with
// the 64-lane bit-parallel backend: same module, pattern budget and shard
// plan, so the patterns/sec metrics are directly comparable between the
// two benchmark families. The workers=1 row against the event backend's
// workers=1 row is the single-core speedup the bit-parallel engine exists
// for (>10x locally; CI gates >=5x via `benchcmp -min-speedup`, leaving
// headroom for noisy shared runners).
func BenchmarkCharacterizeBitParallel(b *testing.B) {
	const patterns = 5120
	nl, err := Build("csa-multiplier", 16)
	if err != nil {
		b.Fatal(err)
	}
	meter, err := NewMeter(nl)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Characterize(meter, "bench", core.CharacterizeOptions{
					Patterns: patterns, Seed: 1, Workers: workers,
					Backend: core.BackendBitParallel,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(patterns)*float64(b.N)/b.Elapsed().Seconds(), "patterns/sec")
		})
	}
}

// BenchmarkSimulateCycle measures raw event-driven simulation throughput
// on the largest paper module (16x16 Booth-Wallace).
func BenchmarkSimulateCycle(b *testing.B) {
	nl, err := Build("booth-wallace-multiplier", 16)
	if err != nil {
		b.Fatal(err)
	}
	meter, err := NewMeter(nl)
	if err != nil {
		b.Fatal(err)
	}
	stream := OperandStream(TypeRandom, 16, 2, 1)
	meter.Reset(stream.Next())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meter.Cycle(stream.Next())
	}
}
