package hdpower

import (
	"fmt"
	"strings"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/experiments"
	"hdpower/internal/hddist"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
)

// Re-exported types. Aliases keep the full method sets of the internal
// implementations available through the public package.
type (
	// Word is a fixed-width little-endian bit vector.
	Word = logic.Word
	// Netlist is a combinational gate-level circuit.
	Netlist = netlist.Netlist
	// Model is a characterized Hd power macro-model.
	Model = core.Model
	// Coef is one coefficient of a model.
	Coef = core.Coef
	// CharacterizeOptions configures Characterize.
	CharacterizeOptions = core.CharacterizeOptions
	// BackendKind selects the simulation engine behind characterization.
	BackendKind = core.BackendKind
	// Meter measures per-cycle charge of a netlist.
	Meter = power.Meter
	// Trace is a sequence of measured cycles.
	Trace = power.Trace
	// Source produces an input word stream.
	Source = stimuli.Source
	// DataType enumerates the paper's five stimulus classes.
	DataType = stimuli.DataType
	// WordStats holds word-level stream statistics.
	WordStats = stats.WordStats
	// Dist is a Hamming-distance probability distribution.
	Dist = hddist.Dist
	// Suite runs the paper's experiments.
	Suite = experiments.Suite
	// ExperimentConfig scales the experiment suite.
	ExperimentConfig = experiments.Config
)

// The five stimulus classes of the paper's Section 4.2.
const (
	TypeRandom  = stimuli.TypeRandom
	TypeMusic   = stimuli.TypeMusic
	TypeSpeech  = stimuli.TypeSpeech
	TypeVideo   = stimuli.TypeVideo
	TypeCounter = stimuli.TypeCounter
)

// Characterization backends. BackendAuto keeps the caller's meter (the
// event-driven golden reference); BackendBitParallel prices 64 pattern
// pairs per netlist pass.
const (
	BackendAuto        = core.BackendAuto
	BackendEvent       = core.BackendEvent
	BackendBitParallel = core.BackendBitParallel
)

// Modules lists the available datapath generator names.
func Modules() []string { return dwlib.Names() }

// Build generates the gate-level netlist of a catalog module at the given
// operand width.
func Build(module string, width int) (*Netlist, error) {
	mod, err := dwlib.Lookup(module)
	if err != nil {
		return nil, err
	}
	if width < mod.MinWidth {
		return nil, fmt.Errorf("hdpower: %s requires width >= %d, got %d",
			module, mod.MinWidth, width)
	}
	nl := mod.Build(width)
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	return nl, nil
}

// NewMeter wraps a netlist in an event-driven (glitch-aware) charge meter.
func NewMeter(nl *Netlist) (*Meter, error) {
	return power.NewMeter(nl, sim.EventDriven)
}

// Characterize fits an Hd macro-model for the netlist by stimulating it
// with stratified characterization pairs (paper Section 4.1).
func Characterize(nl *Netlist, name string, opts CharacterizeOptions) (*Model, error) {
	meter, err := NewMeter(nl)
	if err != nil {
		return nil, err
	}
	return core.Characterize(meter, name, opts)
}

// OperandStream builds the canonical synthetic stream of a data type for a
// module with `ports` equal-width operand ports; the ports receive
// independently seeded streams (counter ports are phase shifted).
func OperandStream(dt DataType, width, ports int, seed int64) Source {
	if ports <= 1 {
		return stimuli.NewStream(dt, width, seed)
	}
	srcs := make([]Source, ports)
	for p := range srcs {
		srcs[p] = stimuli.NewStream(dt, width, seed+int64(p)*7919)
	}
	return stimuli.Concat(srcs...)
}

// TakeWords materializes n words from a stream.
func TakeWords(src Source, n int) []Word { return stimuli.Take(src, n) }

// WordFromUint encodes the low `width` bits of v as a word.
func WordFromUint(v uint64, width int) Word { return logic.FromUint(v, width) }

// WordFromInt encodes v as a two's-complement word of the given width.
func WordFromInt(v int64, width int) Word { return logic.FromInt(v, width) }

// Report summarizes an estimation run against the reference simulation.
type Report struct {
	Module string
	Cycles int
	// SimulatedAvg is the reference mean per-cycle charge.
	SimulatedAvg float64
	// EstimatedAvg is the model's mean per-cycle charge.
	EstimatedAvg float64
	// AvgErr is the signed average-charge error in percent (paper ε).
	AvgErr float64
	// CycleErr is the mean absolute per-cycle error in percent (paper ε_a).
	CycleErr float64
	// Enhanced reports whether the enhanced model was used.
	Enhanced bool
}

// String renders the report for humans.
func (r Report) String() string {
	var b strings.Builder
	model := "basic"
	if r.Enhanced {
		model = "enhanced"
	}
	fmt.Fprintf(&b, "%s: %d cycles, %s Hd-model\n", r.Module, r.Cycles, model)
	fmt.Fprintf(&b, "  simulated avg charge: %10.3f\n", r.SimulatedAvg)
	fmt.Fprintf(&b, "  estimated avg charge: %10.3f  (eps %+.1f%%)\n", r.EstimatedAvg, r.AvgErr)
	fmt.Fprintf(&b, "  cycle avg abs error : %9.1f%%\n", r.CycleErr)
	return b.String()
}

// Estimate plays a word stream through the netlist for reference charges
// and through the model for estimates, returning both error metrics. The
// enhanced model is used when the model carries an enhanced table.
func Estimate(model *Model, nl *Netlist, words []Word) (Report, error) {
	meter, err := NewMeter(nl)
	if err != nil {
		return Report{}, err
	}
	tr, err := meter.Run(words)
	if err != nil {
		return Report{}, err
	}
	var est []float64
	if model.HasEnhanced() {
		est, err = model.EstimateEnhanced(tr.Hd, tr.StableZeros)
		if err != nil {
			return Report{}, err
		}
	} else {
		est = model.EstimateBasic(tr.Hd)
	}
	avgErr, err := power.AvgError(est, tr.Q)
	if err != nil {
		return Report{}, err
	}
	cycErr, err := power.AvgAbsCycleError(est, tr.Q)
	if err != nil {
		return Report{}, err
	}
	var estAvg float64
	for _, q := range est {
		estAvg += q
	}
	estAvg /= float64(len(est))
	return Report{
		Module:       model.Module,
		Cycles:       tr.Len(),
		SimulatedAvg: tr.Mean(),
		EstimatedAvg: estAvg,
		AvgErr:       avgErr,
		CycleErr:     cycErr,
		Enhanced:     model.HasEnhanced(),
	}, nil
}

// StreamStats measures the word-level statistics of a stream prefix.
func StreamStats(words []Word) (WordStats, error) { return stats.FromWords(words) }

// AnalyticHdDist computes the Section 6 analytic Hamming-distance
// distribution of an m-bit stream from its word-level statistics.
func AnalyticHdDist(ws WordStats, m int) Dist { return hddist.FromWordStats(ws, m) }

// NewSuite creates an experiment suite; see internal/experiments for the
// per-table drivers.
func NewSuite(cfg ExperimentConfig) *Suite { return experiments.New(cfg) }

// DefaultExperimentConfig is the full-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig is the reduced configuration used by the benches.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }
