package hdpower

import (
	"math"
	"strings"
	"testing"
)

func TestModulesNonEmpty(t *testing.T) {
	mods := Modules()
	if len(mods) < 10 {
		t.Fatalf("catalog has %d modules", len(mods))
	}
	found := false
	for _, m := range mods {
		if m == "csa-multiplier" {
			found = true
		}
	}
	if !found {
		t.Error("csa-multiplier missing from catalog")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("nonexistent", 8); err == nil {
		t.Error("unknown module accepted")
	}
	if _, err := Build("csa-multiplier", 1); err == nil {
		t.Error("sub-minimum width accepted")
	}
	nl, err := Build("ripple-adder", 8)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumInputBits() != 16 {
		t.Errorf("input bits = %d", nl.NumInputBits())
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	nl, err := Build("cla-adder", 4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Characterize(nl, "cla-4", CharacterizeOptions{Patterns: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream := OperandStream(TypeRandom, 4, 2, 5)
	// A fresh netlist for estimation (meters own their simulator state).
	nl2, _ := Build("cla-adder", 4)
	report, err := Estimate(model, nl2, TakeWords(stream, 1501))
	if err != nil {
		t.Fatal(err)
	}
	if report.Cycles != 1500 {
		t.Errorf("cycles = %d", report.Cycles)
	}
	if math.Abs(report.AvgErr) > 10 {
		t.Errorf("avg error on random stream = %.1f%%", report.AvgErr)
	}
	if report.SimulatedAvg <= 0 || report.EstimatedAvg <= 0 {
		t.Errorf("non-positive averages: %+v", report)
	}
	if !strings.Contains(report.String(), "cla-4") {
		t.Error("report string missing module name")
	}
}

func TestEstimateUsesEnhancedWhenAvailable(t *testing.T) {
	nl, _ := Build("absval", 6)
	model, err := Characterize(nl, "absval-6", CharacterizeOptions{
		Patterns: 2000, Enhanced: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl2, _ := Build("absval", 6)
	report, err := Estimate(model, nl2, TakeWords(OperandStream(TypeSpeech, 6, 1, 4), 501))
	if err != nil {
		t.Fatal(err)
	}
	if !report.Enhanced {
		t.Error("enhanced model not used")
	}
}

func TestStreamAndDistHelpers(t *testing.T) {
	words := TakeWords(OperandStream(TypeSpeech, 12, 1, 9), 4000)
	ws, err := StreamStats(words)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Rho < 0.8 {
		t.Errorf("speech rho = %v", ws.Rho)
	}
	d := AnalyticHdDist(ws, 12)
	if len(d) != 13 {
		t.Fatalf("dist support = %d", len(d))
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("dist sum = %v", d.Sum())
	}
}

func TestSuiteConstruction(t *testing.T) {
	cfg := QuickExperimentConfig()
	s := NewSuite(cfg)
	if s.Config().EvalPatterns != cfg.EvalPatterns {
		t.Error("config not retained")
	}
	if DefaultExperimentConfig().EvalPatterns < cfg.EvalPatterns {
		t.Error("default config smaller than quick config")
	}
}
