// Word-level statistics explorer: the Section 6 pipeline on its own.
//
// For each of the paper's five data-type streams the example measures the
// word-level statistics (μ, σ, ρ), derives the dual-bit-type breakpoints
// and region activities, computes the analytic Hamming-distance
// distribution of eq. (18), and compares it — and the eq. (11) average —
// against the values extracted from the stream.
package main

import (
	"fmt"
	"log"

	"hdpower"
	"hdpower/internal/hddist"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
	"hdpower/internal/textplot"
)

const (
	width = 16
	n     = 20000
)

func main() {
	fmt.Printf("word-level statistics of the paper's data types (%d-bit, %d samples)\n\n", width, n)
	fmt.Printf("%-4s %9s %9s %7s | %4s %4s %7s | %9s %9s | %6s\n",
		"type", "mean", "std", "rho", "BP0", "BP1", "t_sign", "avgHd(11)", "avgHd(em)", "TV")

	for _, dt := range stimuli.AllDataTypes() {
		words := hdpower.TakeWords(stimuli.NewStream(dt, width, 123), n)
		ws, err := stats.FromWords(words)
		if err != nil {
			log.Fatal(err)
		}
		bp := stats.ComputeBreakpoints(ws, width)
		regions := stats.Regions(ws, width)
		analytic := hddist.FromWordStats(ws, width)
		empirical, err := hddist.FromWords(words)
		if err != nil {
			log.Fatal(err)
		}
		tv, err := empirical.TotalVariation(analytic)
		if err != nil {
			log.Fatal(err)
		}
		empAvg, err := stats.EmpiricalAvgHd(words)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %9.1f %9.1f %7.3f | %4d %4d %7.3f | %9.2f %9.2f | %6.3f\n",
			dt, ws.Mean, ws.Std, ws.Rho, bp.BP0, bp.BP1,
			stats.SignActivity(ws), regions.AvgHd(), empAvg, tv)
	}

	fmt.Println("\nanalytic vs extracted distribution, speech stream:")
	words := hdpower.TakeWords(stimuli.NewStream(stimuli.TypeSpeech, width, 123), n)
	ws, _ := stats.FromWords(words)
	empirical, _ := hddist.FromWords(words)
	analytic := hddist.FromWordStats(ws, width)
	xs := make([]float64, width+1)
	for i := range xs {
		xs[i] = float64(i)
	}
	fmt.Print(textplot.Chart("p(Hd=i)", "Hd", xs, []textplot.Series{
		{Name: "extracted", Y: empirical},
		{Name: "analytic", Y: analytic},
	}, 64, 14))
}
