// FIR filter power budget: the DSP scenario that motivates the paper.
//
// A 4-tap FIR filter y[n] = Σ c_k·x[n−k] is mapped onto a datapath of
// four 8x8 multipliers and three 16-bit ripple adders. The example
// characterizes one Hd model per module *type*, simulates the filter at
// word level to obtain each instance's actual operand streams, estimates
// every instance's power from (Hd, stable-zeros) pairs alone, and checks
// the per-instance budget against full gate-level simulation — exactly
// the high-level power-analysis flow the paper targets.
//
// The constant-coefficient operand keeps 8 of each multiplier's 16 input
// bits frozen, which is the paper's Section 4.1 stress case: the basic
// Hd model systematically over-estimates such streams, and the enhanced
// (stable-zero aware) model repairs most of the bias — the example prints
// both so the effect is visible.
package main

import (
	"fmt"
	"log"

	"hdpower"
)

const (
	taps    = 4
	inBits  = 8
	sumBits = 16
	samples = 3000
)

// filter coefficients (8-bit signed)
var coef = [taps]int64{37, -21, 90, 14}

func main() {
	// Hd models, one per module type.
	mulModel := characterize("csa-multiplier", inBits)
	addModel := characterize("ripple-adder", sumBits)

	// Word-level simulation of the filter to obtain operand streams.
	x := hdpower.TakeWords(hdpower.OperandStream(hdpower.TypeSpeech, inBits, 1, 7), samples+taps)
	xi := make([]int64, len(x))
	for i, w := range x {
		xi[i] = w.Int()
	}

	// Operand streams per datapath instance. mulIn[k][n] is the packed
	// input vector of multiplier k at cycle n; addIn likewise for the
	// adder tree (a0 = p0+p1, a1 = p2+p3, a2 = a0+a1).
	mulIn := make([][]hdpower.Word, taps)
	addIn := make([][]hdpower.Word, 3)
	for n := taps; n < len(x); n++ {
		var p [taps]int64
		for k := 0; k < taps; k++ {
			// csa-multiplier is unsigned; operate on magnitudes for the
			// example's purposes (a real filter would use the Booth
			// multiplier for signed data — swap the module name to try).
			a := abs(xi[n-k]) & 0xff
			b := abs(coef[k]) & 0xff
			p[k] = a * b
			mulIn[k] = append(mulIn[k],
				hdpower.WordFromUint(uint64(a), inBits).Concat(hdpower.WordFromUint(uint64(b), inBits)))
		}
		s0 := p[0] + p[1]
		s1 := p[2] + p[3]
		addIn[0] = append(addIn[0], pack16(p[0], p[1]))
		addIn[1] = append(addIn[1], pack16(p[2], p[3]))
		addIn[2] = append(addIn[2], pack16(s0&0xffff, s1&0xffff))
	}

	fmt.Printf("4-tap FIR, %d speech samples\n\n", samples)
	fmt.Printf("%-10s %12s %12s %12s %9s %9s\n",
		"instance", "basic est", "enhanced est", "simulated", "eps basic", "eps enh")
	var basTotal, enhTotal, simTotal float64
	row := func(name, module string, width int, words []hdpower.Word) {
		var model *hdpower.Model
		if module == "csa-multiplier" {
			model = mulModel
		} else {
			model = addModel
		}
		bas, enh, sim := budget(model, module, width, words)
		basTotal += bas
		enhTotal += enh
		simTotal += sim
		fmt.Printf("%-10s %12.1f %12.1f %12.1f %8.1f%% %8.1f%%\n",
			name, bas, enh, sim, err(bas, sim), err(enh, sim))
	}
	for k := 0; k < taps; k++ {
		row(fmt.Sprintf("mul%d", k), "csa-multiplier", inBits, mulIn[k])
	}
	for k := 0; k < 3; k++ {
		row(fmt.Sprintf("add%d", k), "ripple-adder", sumBits, addIn[k])
	}
	fmt.Printf("%-10s %12.1f %12.1f %12.1f %8.1f%% %8.1f%%\n",
		"TOTAL", basTotal, enhTotal, simTotal, err(basTotal, simTotal), err(enhTotal, simTotal))
	fmt.Println("\n(average charge per cycle, arbitrary units)")
	fmt.Println("the frozen coefficient operands break the basic model (Section 4.1);")
	fmt.Println("the enhanced stable-zero classes recover most of the bias (Table 2).")
}

// budget estimates one instance's average power from its operand stream
// with the basic and the enhanced model, plus the simulated reference.
func budget(model *hdpower.Model, module string, width int, words []hdpower.Word) (basic, enhanced, sim float64) {
	nl, err := hdpower.Build(module, width)
	if err != nil {
		log.Fatal(err)
	}
	meter, err := hdpower.NewMeter(nl)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := meter.Run(words)
	if err != nil {
		log.Fatal(err)
	}
	basicEst := model.EstimateBasic(tr.Hd)
	enhEst, err := model.EstimateEnhanced(tr.Hd, tr.StableZeros)
	if err != nil {
		log.Fatal(err)
	}
	return mean(basicEst), mean(enhEst), tr.Mean()
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func characterize(module string, width int) *hdpower.Model {
	nl, err := hdpower.Build(module, width)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hdpower.Characterize(nl, fmt.Sprintf("%s-%d", module, width),
		hdpower.CharacterizeOptions{Patterns: 6000, Enhanced: true, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func pack16(a, b int64) hdpower.Word {
	return hdpower.WordFromUint(uint64(a)&0xffff, sumBits).
		Concat(hdpower.WordFromUint(uint64(b)&0xffff, sumBits))
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func err(e, s float64) float64 {
	if s == 0 {
		return 0
	}
	return (e - s) / s * 100
}
