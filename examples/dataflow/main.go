// Simulation-free power estimation: the full Section 6 recipe.
//
// A small linear dataflow (one stage of an FIR) feeds a 16-bit adder:
//
//	u[n] = x[n] + 2·x[n−1]      (upstream arithmetic)
//	v[n] = x[n−2]               (delay line tap)
//	y[n] = u[n] + v[n]          (the adder whose power we want)
//
// Instead of simulating bit vectors, the example propagates the word-level
// statistics of x analytically through the dataflow (internal/propagate),
// derives each adder port's Hamming-distance distribution from the
// propagated statistics (eq. 18), convolves the two ports, and evaluates
// the characterized Hd model under that distribution:
//
//	stats(x) ──propagate──▶ stats(u), stats(v) ──eq.18──▶ p(Hd)
//	                                            ──Σ p(Hd=i)·p_i──▶ power
//
// A word-level + gate-level simulation of the same adder provides the
// reference. The ports share the source x, so the uncorrelated-ports
// convolution is an approximation — the printout quantifies it.
package main

import (
	"fmt"
	"log"

	"hdpower"
	"hdpower/internal/hddist"
	"hdpower/internal/propagate"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
)

const (
	width   = 16
	samples = 8000
	xStd    = 1800.0
	xRho    = 0.92
)

func main() {
	// --- Analytic route (no simulation of any kind) ------------------
	g := propagate.New()
	x := g.Input("x", stats.WordStats{Mean: 0, Std: xStd, Rho: xRho})
	u := g.Add(x, g.Gain(g.Delay(x, 1), 2))
	v := g.Delay(x, 2)
	wsU, wsV := g.Stats(u), g.Stats(v)
	fmt.Printf("propagated stats: u(std %.0f, rho %.3f)  v(std %.0f, rho %.3f)\n",
		wsU.Std, wsU.Rho, wsV.Std, wsV.Rho)

	distU := hddist.FromWordStats(wsU, width)
	distV := hddist.FromWordStats(wsV, width)
	dist := hddist.Convolve(distU, distV)

	model := characterizeAdder()
	analytic, err := model.AvgFromDist(dist)
	if err != nil {
		log.Fatal(err)
	}

	// --- Reference route (word-level + gate-level simulation) --------
	xs := stimuli.TakeInts(stimuli.AR1(width, 0, xStd, xRho, 2024), samples+2)
	words := make([]hdpower.Word, 0, samples)
	for n := 2; n < len(xs); n++ {
		un := clamp16(xs[n] + 2*xs[n-1])
		vn := clamp16(xs[n-2])
		words = append(words,
			hdpower.WordFromInt(un, width).Concat(hdpower.WordFromInt(vn, width)))
	}
	nl, err := hdpower.Build("ripple-adder", width)
	if err != nil {
		log.Fatal(err)
	}
	meter, err := hdpower.NewMeter(nl)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := meter.Run(words)
	if err != nil {
		log.Fatal(err)
	}

	// Also evaluate the model under the *measured* joint Hd distribution
	// to separate the two error sources: model error vs the analytic
	// route's approximations.
	empDist, err := hddist.FromWords(words)
	if err != nil {
		log.Fatal(err)
	}
	semi, err := model.AvgFromDist(empDist)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("%-46s %10.1f\n", "gate-level simulated average charge:", tr.Mean())
	fmt.Printf("%-46s %10.1f  (%+.1f%%)\n", "Hd model with measured joint Hd distribution:",
		semi, pct(semi, tr.Mean()))
	fmt.Printf("%-46s %10.1f  (%+.1f%%)\n", "fully analytic (propagate + eq.18 + convolve):",
		analytic, pct(analytic, tr.Mean()))
	fmt.Println("\nno bit-level simulation was needed for the last estimate; the residual")
	fmt.Println("gap includes the uncorrelated-ports approximation (u and v share x).")
}

func characterizeAdder() *hdpower.Model {
	nl, err := hdpower.Build("ripple-adder", width)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hdpower.Characterize(nl, "ripple-adder-16",
		hdpower.CharacterizeOptions{Patterns: 6000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func clamp16(v int64) int64 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

func pct(est, ref float64) float64 { return (est - ref) / ref * 100 }
