// Quickstart: build a datapath module, characterize its Hd power
// macro-model, and estimate the power of a speech-like data stream —
// the end-to-end workflow of the paper in ~40 lines.
package main

import (
	"fmt"
	"log"

	"hdpower"
)

func main() {
	// 1. Generate the gate-level netlist of an 8x8 carry-save array
	//    multiplier (the paper's workhorse example).
	nl, err := hdpower.Build("csa-multiplier", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("netlist:", nl.Stats())

	// 2. Characterize the Hd macro-model against the built-in gate-level
	//    charge simulator (the reproduction's PowerMill substitute).
	model, err := hdpower.Characterize(nl, "csa-multiplier-8x8", hdpower.CharacterizeOptions{
		Patterns: 5000,
		Enhanced: true, // also fit the stable-zero refined classes
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	basic, enhanced := model.NumCoefficients()
	fmt.Printf("model: %d basic + %d enhanced coefficients, total deviation %.1f%%\n",
		basic, enhanced, model.TotalDeviation()*100)
	for _, i := range []int{1, 4, 8, 12, 16} {
		fmt.Printf("  p_%-2d = %8.2f\n", i, model.P(i))
	}

	// 3. Estimate the power of a strongly correlated speech stream on
	//    both operand ports and compare against full simulation.
	stream := hdpower.OperandStream(hdpower.TypeSpeech, 8, 2, 42)
	nl2, err := hdpower.Build("csa-multiplier", 8)
	if err != nil {
		log.Fatal(err)
	}
	report, err := hdpower.Estimate(model, nl2, hdpower.TakeWords(stream, 5001))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report)
}
