// Width extrapolation: the Section 5 payoff.
//
// Three small ripple-adder prototypes (widths 4, 10, 16 — the paper's THI
// reduced set) are characterized once. A linear complexity regression
// turns them into a width-parameterizable model, which then predicts the
// power of adders that were NEVER characterized — including a 24-bit
// instance beyond the largest prototype. Gate-level simulation of the
// real instances provides the verdict.
package main

import (
	"fmt"
	"log"

	"hdpower"
	"hdpower/internal/regress"
)

const module = "ripple-adder"

func main() {
	// Characterize the THI prototype set (3 instances only).
	var protos []regress.Prototype
	for _, w := range regress.SetThi.Widths() {
		nl, err := hdpower.Build(module, w)
		if err != nil {
			log.Fatal(err)
		}
		model, err := hdpower.Characterize(nl, fmt.Sprintf("%s-%d", module, w),
			hdpower.CharacterizeOptions{Patterns: 6000, Seed: int64(w)})
		if err != nil {
			log.Fatal(err)
		}
		protos = append(protos, regress.Prototype{Width: w, Model: model})
	}
	pm, err := regress.Fit(module, protos, regress.BasisFor(module), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %s regression from prototypes %v (basis %s)\n\n",
		module, regress.SetThi.Widths(), pm.Basis.Name)

	// Predict and verify at unseen widths — interpolated and extrapolated.
	fmt.Printf("%6s %12s %14s %12s %8s\n", "width", "seen?", "predicted avg", "simulated", "eps")
	for _, w := range []int{6, 8, 12, 14, 20, 24} {
		model := pm.Synthesize(w)
		nl, err := hdpower.Build(module, w)
		if err != nil {
			log.Fatal(err)
		}
		stream := hdpower.OperandStream(hdpower.TypeRandom, w, 2, 99)
		report, err := hdpower.Estimate(model, nl, hdpower.TakeWords(stream, 3001))
		if err != nil {
			log.Fatal(err)
		}
		seen := "interpolated"
		if w > 16 {
			seen = "extrapolated"
		}
		fmt.Printf("%6d %12s %14.1f %12.1f %7.1f%%\n",
			w, seen, report.EstimatedAvg, report.SimulatedAvg, report.AvgErr)
	}
	fmt.Println("\n(no instance above was ever characterized; 3 prototypes carry the family)")
}
