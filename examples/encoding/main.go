// Bus-encoding study: the "minimize switching activity" optimization the
// Hd model turns quantitative.
//
// A datapath unit consumes a sequential address/sample stream. Feeding it
// the binary count directly costs an average input Hamming-distance of
// ~2 (LSB toggles every cycle, bit k every 2^k); Gray-encoding the same
// stream guarantees exactly one bit flip per cycle. The example predicts
// both powers from the characterized Hd model alone and verifies the
// prediction — and the energy saving — against gate-level simulation.
package main

import (
	"fmt"
	"log"

	"hdpower"
)

const (
	width  = 8
	cycles = 4000
)

func main() {
	model := characterize()

	binary := make([]hdpower.Word, cycles)
	gray := make([]hdpower.Word, cycles)
	for n := range binary {
		v := uint64(n)
		binary[n] = hdpower.WordFromUint(v&0xff, width)
		gray[n] = hdpower.WordFromUint((v^(v>>1))&0xff, width)
	}

	fmt.Printf("consumer: absval-%d, %d-cycle counter stream\n\n", width, cycles)
	fmt.Printf("%-10s %14s %14s %10s\n", "encoding", "model estimate", "simulated", "eps")
	binEst, binSim := run(model, binary)
	grayEst, graySim := run(model, gray)
	fmt.Printf("%-10s %14.2f %14.2f %9.1f%%\n", "binary", binEst, binSim, pct(binEst, binSim))
	fmt.Printf("%-10s %14.2f %14.2f %9.1f%%\n", "gray", grayEst, graySim, pct(grayEst, graySim))

	fmt.Printf("\npredicted saving from Gray encoding : %5.1f%%\n", (1-grayEst/binEst)*100)
	fmt.Printf("simulated saving from Gray encoding : %5.1f%%\n", (1-graySim/binSim)*100)
	fmt.Println("\n(the Hd model ranks encodings without gate-level simulation in the loop)")
}

func run(model *hdpower.Model, words []hdpower.Word) (est, sim float64) {
	nl, err := hdpower.Build("absval", width)
	if err != nil {
		log.Fatal(err)
	}
	report, err := hdpower.Estimate(model, nl, words)
	if err != nil {
		log.Fatal(err)
	}
	return report.EstimatedAvg, report.SimulatedAvg
}

func characterize() *hdpower.Model {
	nl, err := hdpower.Build("absval", width)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hdpower.Characterize(nl, "absval-8", hdpower.CharacterizeOptions{
		Patterns: 6000, Enhanced: true, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func pct(e, s float64) float64 { return (e - s) / s * 100 }
