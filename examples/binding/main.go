// Low-power module binding: the high-level-synthesis use case from the
// paper's introduction (refs. [5–8] minimize switching activity when
// assigning operations to functional units).
//
// Two multiplications execute each control step: an audio product
// a[n]·c1 and a video product v[n]·c2. A binder can either
//
//   - SHARED: time-multiplex both operations onto one multiplier — the
//     unit's inputs jump between the two uncorrelated streams every
//     cycle, maximizing Hamming-distance, or
//   - DEDICATED: bind each operation to its own multiplier — each unit
//     sees one coherent, correlated stream with small Hamming-distances.
//
// The example scores both bindings with the Hd macro-model alone (no
// gate-level simulation in the loop) and then verifies the ranking with
// the reference simulator.
package main

import (
	"fmt"
	"log"

	"hdpower"
)

const (
	width  = 8
	ops    = 3000 // operations per stream
	cMusic = 57   // constant coefficient for the audio stream
	cVideo = 113  // constant coefficient for the video stream
)

func main() {
	model := characterize()

	audio := operands(hdpower.TypeMusic, cMusic, 11)
	video := operands(hdpower.TypeVideo, cVideo, 22)

	// SHARED: one multiplier executes audio and video ops alternately.
	shared := make([]hdpower.Word, 0, 2*ops)
	for n := 0; n < ops; n++ {
		shared = append(shared, audio[n], video[n])
	}

	fmt.Println("binding study: 2 multiplications/step on 8x8 csa multipliers")
	fmt.Println()

	estShared, simShared := score(model, shared)
	estAudio, simAudio := score(model, audio)
	estVideo, simVideo := score(model, video)
	// SHARED runs one unit at double rate: energy per control step is
	// 2 cycles × avg charge. DEDICATED runs two units at single rate.
	estDedicated := estAudio + estVideo
	simDedicated := simAudio + simVideo
	estSharedStep := 2 * estShared
	simSharedStep := 2 * simShared

	fmt.Printf("%-34s %14s %14s\n", "binding", "model estimate", "simulated")
	fmt.Printf("%-34s %14.1f %14.1f\n", "SHARED (1 unit, interleaved)", estSharedStep, simSharedStep)
	fmt.Printf("%-34s %14.1f %14.1f\n", "DEDICATED (2 units, coherent)", estDedicated, simDedicated)
	fmt.Println("\n(charge per control step, arbitrary units)")

	modelPick := pick(estSharedStep, estDedicated)
	simPick := pick(simSharedStep, simDedicated)
	fmt.Printf("\nmodel picks %s, simulation confirms %s", modelPick, simPick)
	if modelPick == simPick {
		fmt.Printf(" — Hd model ranked the bindings correctly (%.0f%% energy saved)\n",
			(1-min(simSharedStep, simDedicated)/max(simSharedStep, simDedicated))*100)
	} else {
		fmt.Println(" — rankings DISAGREE")
	}
}

// operands builds the packed input stream x[n]·c for one operation.
func operands(dt hdpower.DataType, c int64, seed int64) []hdpower.Word {
	xs := hdpower.TakeWords(hdpower.OperandStream(dt, width, 1, seed), ops)
	out := make([]hdpower.Word, ops)
	cw := hdpower.WordFromUint(uint64(c), width)
	for n, x := range xs {
		// magnitudes: the csa multiplier is unsigned
		v := x.Int()
		if v < 0 {
			v = -v
		}
		out[n] = hdpower.WordFromUint(uint64(v), width).Concat(cw)
	}
	return out
}

// score returns the model-estimated and simulated average charge per
// cycle of a multiplier executing the stream.
func score(model *hdpower.Model, words []hdpower.Word) (est, sim float64) {
	nl, err := hdpower.Build("csa-multiplier", width)
	if err != nil {
		log.Fatal(err)
	}
	report, err := hdpower.Estimate(model, nl, words)
	if err != nil {
		log.Fatal(err)
	}
	return report.EstimatedAvg, report.SimulatedAvg
}

func characterize() *hdpower.Model {
	nl, err := hdpower.Build("csa-multiplier", width)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hdpower.Characterize(nl, "csa-multiplier-8x8",
		hdpower.CharacterizeOptions{Patterns: 5000, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func pick(shared, dedicated float64) string {
	if shared < dedicated {
		return "SHARED"
	}
	return "DEDICATED"
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
